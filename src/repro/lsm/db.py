"""The LSM-tree key-value store (the paper's RocksDB stand-in).

Write path: WAL append → skip-list memtable → flush to an L0 SST (with a
freshly built per-SST filter) → leveled compaction.  Read path: memtable,
then every overlapping run newest-to-oldest, each guarded by its filter —
"for every run of the tree, a point or range query first probes the
corresponding [filter] for this run, and only tries to access the run on
disk if [it] returns a positive" (§2).

Range queries follow §4's implementation overview: probe all relevant
filter instances; if all answer negative, delete the iterator and return
empty; otherwise seek the merging iterator at the (possibly *tightened*,
§2.2.1) lower bound and advance until the upper bound.  Every sub-cost the
paper measures (filter probe, deserialization, residual seek, block read
time) is charged to :class:`~repro.lsm.stats.PerfStats`.

Workload statistics flow into a :class:`~repro.core.tuning.WorkloadTracker`;
:meth:`DB.retune_filters` applies the §2.4 auto-tuner so post-compaction
filter instances adopt the workload-optimal configuration.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Sequence

from repro.core.tuning import AutoTuner, TuningDecision, WorkloadTracker
from repro.errors import (
    ClosedStoreError,
    FilterQueryError,
    PowerCutError,
    ReadOnlyStoreError,
    ReproError,
    StoreError,
)
from repro.filters.base import FilterFactory, KeyFilter
from repro.filters.rosetta_adapter import RosettaFilter
from repro.lsm.block_cache import BlockCache
from repro.lsm.compaction import Compactor
from repro.lsm.env import StorageEnv
from repro.lsm.filter_integration import (
    FilterDictionary,
    batched_point_verdicts,
    batched_tightened_ranges,
)
from repro.lsm.format import ValueTag
from repro.lsm.iterators import MergingIterator, live_entries
from repro.lsm.memtable import MemTable
from repro.lsm.options import DBOptions
from repro.lsm.perf_context import QueryContext
from repro.lsm.sstable import SSTMeta, SSTReader, SSTWriter
from repro.lsm.stats import PerfStats, Stopwatch
from repro.lsm.version import Run, Version
from repro.lsm.wal import BATCH_OP, WriteAheadLog
from repro.lsm.write_batch import WriteBatch

_MANIFEST = "MANIFEST.json"

_SST_NAME = re.compile(r"^sst_(\d+)_(\d+)\.sst$")

__all__ = ["DB", "HealthReport"]


@dataclass(frozen=True)
class HealthReport:
    """Snapshot of the store's fault state (``DB.health()``).

    ``mode`` is ``"healthy"`` or ``"degraded"``; degraded means a
    background flush/compaction failed, writes raise
    :class:`~repro.errors.ReadOnlyStoreError`, and :meth:`DB.resume` is the
    way back.  The counters mirror the fault-handling fields of
    :class:`~repro.lsm.stats.PerfStats` so an operator sees every injected
    or real fault the store absorbed.
    """

    mode: str
    background_error: str | None
    degraded_filters: tuple[str, ...]
    io_transient_errors: int
    io_retries: int
    filters_degraded: int
    background_errors: int

    @property
    def ok(self) -> bool:
        """True when fully healthy (no degraded state of any kind)."""
        return self.mode == "healthy" and not self.degraded_filters

    def summary(self) -> str:
        """One-line human-readable digest."""
        parts = [f"mode={self.mode}"]
        if self.background_error:
            parts.append(f"background_error={self.background_error!r}")
        if self.degraded_filters:
            parts.append(
                f"degraded_filters=[{', '.join(self.degraded_filters)}]"
            )
        parts.append(
            f"io: {self.io_transient_errors} transient errors, "
            f"{self.io_retries} retries"
        )
        return "; ".join(parts)


class DB:
    """An LSM-tree key-value store over integer keys and byte values.

    Examples
    --------
    >>> from repro.lsm import DB, DBOptions
    >>> db = DB("/tmp/example-db", DBOptions(key_bits=32))
    >>> db.put(42, b"value")
    >>> db.get(42)
    b'value'
    >>> db.range_query(40, 50)
    [(42, b'value')]
    >>> db.close()
    """

    def __init__(self, path: str, options: DBOptions | None = None) -> None:
        self.options = options if options is not None else DBOptions()
        self.options.validate()
        self.stats = PerfStats()
        self.tracker = WorkloadTracker()
        env_factory = self.options.env_factory or StorageEnv
        self._env = env_factory(path, self.options.device, self.stats)
        self._env.retry_attempts = self.options.io_retry_attempts
        self._env.retry_backoff_ns = self.options.io_retry_backoff_ns
        self._cache = BlockCache(self.options.block_cache_bytes)
        self._filter_dictionary = FilterDictionary(
            enabled=self.options.use_filter_dictionary,
            degrade_corrupt=self.options.degrade_corrupt_filters,
        )
        self._current_filter_factory = self.options.filter_factory
        self._compactor = Compactor(
            self._env,
            self.options,
            self._cache,
            self._filter_dictionary,
            filter_factory_provider=lambda: self._current_filter_factory,
            on_version_change=self._write_manifest,
        )
        self._version = Version()
        self._memtable = MemTable()
        self._wal = (
            WriteAheadLog(self._env, sync=self.options.wal_sync)
            if self.options.use_wal
            else None
        )
        self._closed = False
        #: Description of the background failure that degraded the store
        #: to read-only, or None when healthy (see :meth:`health`).
        self._background_error: str | None = None
        #: Per-query performance context of the most recent read operation.
        self.last_query: QueryContext | None = None
        self._recover()

    # ------------------------------------------------------------------
    # Key codec
    # ------------------------------------------------------------------
    def _encode_key(self, key: int) -> bytes:
        key = int(key)
        if key < 0 or key >> self.options.key_bits:
            raise FilterQueryError(
                f"key {key} outside domain [0, 2^{self.options.key_bits})"
            )
        return key.to_bytes(self.options.key_width_bytes, "big")

    @staticmethod
    def _decode_key(key: bytes) -> int:
        return int.from_bytes(key, "big")

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def put(self, key: int, value: bytes) -> None:
        """Insert or overwrite a key."""
        self._check_open()
        self._check_writable()
        encoded = self._encode_key(key)
        if self._wal is not None:
            self._wal.append_put(encoded, value)
        self._memtable.put(encoded, bytes(value))
        self.stats.writes += 1
        self._maybe_flush()

    def delete(self, key: int) -> None:
        """Delete a key (writes a tombstone)."""
        self._check_open()
        self._check_writable()
        encoded = self._encode_key(key)
        if self._wal is not None:
            self._wal.append_delete(encoded)
        self._memtable.delete(encoded)
        self.stats.writes += 1
        self._maybe_flush()

    def put_batch(self, items: Iterable[tuple[int, bytes]]) -> None:
        """Insert many items through the normal write path."""
        for key, value in items:
            self.put(key, value)

    def write(self, batch) -> None:
        """Apply a :class:`~repro.lsm.write_batch.WriteBatch` atomically.

        The batch is persisted as a single WAL frame before touching the
        memtable, so recovery sees all of it or none of it.
        """
        self._check_open()
        self._check_writable()
        if len(batch) == 0:
            return
        # Validate every key before any side effect (atomicity).
        for _tag, key, _value in batch:
            decoded = self._decode_key(key)
            if decoded >> self.options.key_bits:
                raise FilterQueryError(
                    f"batched key {decoded} outside domain "
                    f"[0, 2^{self.options.key_bits})"
                )
        if self._wal is not None:
            self._wal.append_batch(batch.encode())
        for tag, key, value in batch:
            if tag == ValueTag.PUT:
                self._memtable.put(key, value)
            else:
                self._memtable.delete(key)
        self.stats.writes += len(batch)
        self._maybe_flush()

    def batch(self) -> "WriteBatch":
        """A fresh :class:`WriteBatch` whose keys are encoded by this DB.

        Convenience wrapper so callers work with integer keys::

            b = db.batch()
            b.put_int(1, b"a").delete_int(2)
            db.write(b)
        """
        db = self

        class _IntBatch(WriteBatch):
            def put_int(self, key: int, value: bytes) -> "_IntBatch":
                self.put(db._encode_key(key), value)  # noqa: SLF001
                return self

            def delete_int(self, key: int) -> "_IntBatch":
                self.delete(db._encode_key(key))  # noqa: SLF001
                return self

        return _IntBatch()

    def _maybe_flush(self) -> None:
        if self._memtable.approximate_bytes >= self.options.memtable_size_bytes:
            self.flush()

    def flush(self) -> None:
        """Flush the memtable to a new L0 SST file and run compactions.

        A failing background write does not raise: the store enters
        degraded read-only mode (see :meth:`health` / :meth:`resume`) with
        the memtable and WAL intact, so no acknowledged write is lost.

        Durability ordering: the SST is written and the manifest persisted
        (atomically) *before* the WAL is truncated — a crash between any
        two steps recovers either from the WAL or from the manifest, never
        from neither.
        """
        self._check_open()
        self._check_writable()
        self._run_background("flush", self._flush_body)

    def _flush_body(self) -> None:
        if self._memtable.is_empty:
            return
        name = self._compactor.next_file_name(0)
        writer = SSTWriter(
            self._env, name, self.options,
            filter_factory=self._current_filter_factory,
        )
        for key, tag, value in self._memtable.entries():
            writer.add(key, tag, value)
        meta = writer.finish()
        reader = SSTReader(
            self._env, meta, self.options, self._cache, is_level0=True
        )
        self._version.add_level0(Run(reader=reader, level=0))
        self._write_manifest()
        # Only now is the run durable under the manifest; dropping the
        # buffered copies can no longer lose acknowledged writes.
        self._memtable = MemTable()
        if self._wal is not None:
            self._wal.truncate()
        self.stats.flushes += 1
        self._compactor.maybe_compact(self._version)

    def compact(self) -> None:
        """Force L0 into the tree and settle all compaction triggers."""
        self._check_open()
        self._check_writable()
        if not self._run_background("flush", self._flush_body):
            return
        if self._version.level0:
            self._run_background("compaction", self._compact_body)

    def _compact_body(self) -> None:
        if self.options.compaction_style == "tiered":
            inputs = self._version.level_runs(0)
            self._compactor._tiered_merge(  # noqa: SLF001
                self._version, inputs, target=1
            )
            self._version.clear_level0()
            self._write_manifest()
            self._compactor._destroy_runs(inputs)  # noqa: SLF001
        else:
            self._compactor._compact_level0(self._version)  # noqa: SLF001
        self._compactor.maybe_compact(self._version)

    def force_full_compaction(self) -> None:
        """Merge every run into the bottom-most populated level.

        The analogue of RocksDB's ``CompactRange`` over the whole keyspace:
        every SST is rewritten, so every filter instance is rebuilt with the
        *current* filter factory — the way a §2.4 retuning decision reaches
        all existing data.
        """
        self._check_open()
        self._check_writable()
        if not self._run_background("flush", self._flush_body):
            return
        self._run_background("compaction", self._full_compaction_body)

    def _full_compaction_body(self) -> None:
        inputs = self._version.all_runs_newest_first()
        if not inputs:
            return
        target = max(1, self._version.max_populated_level())
        outputs = self._compactor._merge_and_write(  # noqa: SLF001
            inputs, output_level=target, drop_tombstones=True
        )
        self._version.clear_level0()
        for level in list(self._version.levels):
            self._version.install_level(level, [])
        self._version.install_level(target, outputs)
        self._write_manifest()
        self._compactor._destroy_runs(inputs)  # noqa: SLF001

    # ------------------------------------------------------------------
    # Background-error state machine
    # ------------------------------------------------------------------
    def _run_background(self, op: str, body: Callable[[], None]) -> bool:
        """Run a background write; on failure degrade instead of crashing.

        Simulated power cuts and closed-store misuse propagate untouched —
        only genuine I/O / store errors park the DB in read-only mode.
        Returns True when the body completed.
        """
        try:
            body()
            return True
        except (PowerCutError, ClosedStoreError):
            raise
        except (OSError, ReproError) as exc:
            self._enter_background_error(op, exc)
            return False

    def _enter_background_error(self, op: str, exc: BaseException) -> None:
        self._background_error = f"{op}: {type(exc).__name__}: {exc}"
        self.stats.background_errors += 1

    def _check_writable(self) -> None:
        if self._background_error is not None:
            raise ReadOnlyStoreError(
                f"store is in degraded read-only mode after a background "
                f"error ({self._background_error}); call resume() to retry"
            )

    def health(self) -> HealthReport:
        """The store's current fault state (always readable, never raises)."""
        return HealthReport(
            mode="degraded" if self._background_error is not None else "healthy",
            background_error=self._background_error,
            degraded_filters=tuple(sorted(self._filter_dictionary.degraded)),
            io_transient_errors=self.stats.io_transient_errors,
            io_retries=self.stats.io_retries,
            filters_degraded=self.stats.filters_degraded,
            background_errors=self.stats.background_errors,
        )

    def resume(self) -> bool:
        """Leave degraded read-only mode and retry the pending flush.

        Mirrors RocksDB's ``DB::Resume``: clears the background error and
        re-attempts flushing whatever the failed background write left
        buffered.  Returns True when the store is writable again (a fresh
        failure re-enters degraded mode and returns False).
        """
        self._check_open()
        if self._background_error is None:
            return True
        self._background_error = None
        if not self._memtable.is_empty:
            self._run_background("flush", self._flush_body)
        return self._background_error is None

    # ------------------------------------------------------------------
    # Bulk load
    # ------------------------------------------------------------------
    def ingest(self, items: Iterable[tuple[int, bytes]], level: int | None = None) -> None:
        """Bulk-load sorted unique items directly into one deep level.

        The paper's experiments load 50M keys before measuring queries;
        this path builds bottom-level SSTs (with filters) without write
        amplification.  ``level`` defaults to the shallowest level whose
        size target fits the data.
        """
        self._check_open()
        self._check_writable()
        pairs = sorted(items, key=lambda kv: kv[0])
        if not pairs:
            return
        if level is None:
            estimated = sum(
                self.options.key_width_bytes + len(v) + 8 for _, v in pairs
            )
            level = 1
            while (
                level < self.options.num_levels - 1
                and estimated > self.options.level_target_bytes(level)
            ):
                level += 1
        if not 1 <= level < self.options.num_levels:
            raise StoreError(f"ingest level {level} out of range")
        if self._version.level_runs(level):
            raise StoreError(f"ingest target level {level} is not empty")

        runs: list[Run] = []
        writer: SSTWriter | None = None
        previous: int | None = None
        for key, value in pairs:
            if key == previous:
                continue
            previous = key
            if writer is None:
                writer = SSTWriter(
                    self._env,
                    self._compactor.next_file_name(level),
                    self.options,
                    filter_factory=self._current_filter_factory,
                )
            writer.add(self._encode_key(key), ValueTag.PUT, bytes(value))
            if writer.estimated_file_size >= self.options.sst_size_bytes:
                runs.append(self._finish_ingest_writer(writer, level))
                writer = None
        if writer is not None and writer.num_entries:
            runs.append(self._finish_ingest_writer(writer, level))
        self._version.install_level(level, runs)
        self._write_manifest()

    def _finish_ingest_writer(self, writer: SSTWriter, level: int) -> Run:
        meta = writer.finish()
        reader = SSTReader(
            self._env, meta, self.options, self._cache, is_level0=False
        )
        return Run(reader=reader, level=level)

    # ------------------------------------------------------------------
    # Point reads
    # ------------------------------------------------------------------
    def get(self, key: int) -> bytes | None:
        """Point lookup; returns None for absent or deleted keys."""
        self._check_open()
        self.stats.point_queries += 1
        self.tracker.record_point_query()
        encoded = self._encode_key(key)
        context = QueryContext(kind="point", low=int(key), high=int(key))
        before = self.stats.snapshot()
        try:
            buffered = self._memtable.get(encoded)
            if buffered is not None:
                tag, value = buffered
                context.memtable_hit = True
                context.results = 1 if tag == ValueTag.PUT else 0
                return value if tag == ValueTag.PUT else None

            runs = self._version.runs_for_key(encoded)
            context.runs_considered = len(runs)
            for run in runs:
                verdict = self._probe_filter_point(run, encoded)
                if not verdict:
                    continue
                context.iterators_created += 1
                found = run.reader.get(encoded)
                truly_there = found is not None
                self._record_filter_outcome(
                    run, positive=True, truly=truly_there
                )
                self.tracker.record_filter_outcome(True, truly_there)
                if found is not None:
                    tag, value = found
                    context.results = 1 if tag == ValueTag.PUT else 0
                    return value if tag == ValueTag.PUT else None
            return None
        finally:
            delta = self.stats.diff(before)
            context.filters_probed = delta.filter_probes
            context.filter_negatives = delta.filter_negatives
            context.blocks_read = delta.block_reads
            context.block_cache_hits = delta.block_cache_hits
            self.last_query = context

    def _probe_filter_point(self, run: Run, encoded: bytes) -> bool:
        filt = self._filter_dictionary.get_filter(run.reader, self.stats)
        if filt is None:
            return True  # fence pointers only
        self.stats.filter_probes += 1
        with Stopwatch(self.stats, "filter_probe_ns"):
            verdict = filt.may_contain(self._decode_key(encoded))
        if not verdict:
            self.stats.filter_negatives += 1
            self.tracker.record_filter_outcome(False, False)
        return verdict

    # ------------------------------------------------------------------
    # Range reads
    # ------------------------------------------------------------------
    def range_query(self, low: int, high: int) -> list[tuple[int, bytes]]:
        """Inclusive range scan; returns live ``(key, value)`` pairs."""
        return list(self.range_iter(low, high))

    def range_iter(self, low: int, high: int) -> Iterator[tuple[int, bytes]]:
        """Iterator form of :meth:`range_query`."""
        self._check_open()
        if low > high:
            raise FilterQueryError(f"invalid range: low={low} > high={high}")
        self.stats.range_queries += 1
        self.tracker.record_range_query(high - low + 1)
        low_bytes = self._encode_key(low)
        high_bytes = self._encode_key(min(high, (1 << self.options.key_bits) - 1))
        context = QueryContext(kind="range", low=low, high=high)
        before = self.stats.snapshot()

        candidates = self._version.runs_for_range(low_bytes, high_bytes)
        context.runs_considered = len(candidates)
        positive_runs: list[tuple[Run, bytes]] = []
        effectives = self._probe_filters_range(candidates, low, high)
        for run, effective in zip(candidates, effectives):
            if effective is not None:
                seek_key = max(low_bytes, self._encode_key(effective[0]))
                positive_runs.append((run, seek_key))

        memtable_live = not self._memtable.is_empty
        if not positive_runs and not memtable_live:
            # "If all filters answer negative, we delete the iterator and
            # return an empty result" — still a (small) residual cost.
            with Stopwatch(self.stats, "residual_seek_ns"):
                pass
            self._finish_context(context, before)
            return

        with Stopwatch(self.stats, "residual_seek_ns"):
            contributed: dict[str, bool] = {run.name: False for run, _ in positive_runs}
            sources: list[tuple[int, Iterator]] = []
            priority = 0
            if memtable_live:
                sources.append(
                    (priority, self._memtable.entries_from(low_bytes))
                )
                priority += 1
            order = {run.name: i for i, (run, _) in enumerate(positive_runs)}
            for run, seek_key in positive_runs:
                sources.append(
                    (
                        priority + order[run.name],
                        self._tracking_iter(run, seek_key, high_bytes, contributed),
                    )
                )
            context.iterators_created = len(sources)
            merged = MergingIterator(sources)
            results: list[tuple[int, bytes]] = []
            for key, value in live_entries(merged):
                if key > high_bytes:
                    break
                results.append((self._decode_key(key), value))

        for run, _ in positive_runs:
            truly = contributed[run.name]
            self._record_filter_outcome(run, positive=True, truly=truly)
            self.tracker.record_filter_outcome(True, truly)
        context.results = len(results)
        self._finish_context(context, before)
        yield from results

    def _finish_context(self, context: QueryContext, before: PerfStats) -> None:
        delta = self.stats.diff(before)
        context.filters_probed = delta.filter_probes
        context.filter_negatives = delta.filter_negatives
        context.blocks_read = delta.block_reads
        context.block_cache_hits = delta.block_cache_hits
        self.last_query = context

    def _tracking_iter(
        self,
        run: Run,
        seek_key: bytes,
        high_bytes: bytes,
        contributed: dict[str, bool],
    ) -> Iterator[tuple[bytes, int, bytes]]:
        """Two-level iterator wrapper marking runs that had in-range keys."""
        for key, tag, value in run.reader.iterate_from(seek_key):
            if key <= high_bytes:
                contributed[run.name] = True
            yield key, tag, value

    def _probe_filters_range(
        self, runs: list[Run], low: int, high: int
    ) -> list[tuple[int, int] | None]:
        """Probe every overlapping run's filter for ``[low, high]`` at once.

        All Rosetta-backed runs share one frontier sweep per level
        (:func:`~repro.lsm.filter_integration.batched_tightened_ranges`);
        runs without a filter block pass through as ``(low, high)``.
        Per-run verdict bookkeeping matches the old one-probe-per-run path.
        """
        if not runs:
            return []
        filters = [
            self._filter_dictionary.get_filter(run.reader, self.stats)
            for run in runs
        ]
        with Stopwatch(self.stats, "filter_probe_ns"):
            effectives, batch_sweeps = batched_tightened_ranges(
                filters, low, high
            )
        self.stats.filter_batch_probes += batch_sweeps
        for filt, effective in zip(filters, effectives):
            if filt is None:
                continue  # fence pointers already said "overlaps"
            self.stats.filter_probes += 1
            if effective is None:
                self.stats.filter_negatives += 1
                self.tracker.record_filter_outcome(False, False)
        return effectives

    def _record_filter_outcome(self, run: Run, positive: bool, truly: bool) -> None:
        if positive:
            if truly:
                self.stats.filter_true_positives += 1
            else:
                self.stats.filter_false_positives += 1

    def multi_get(self, keys: Iterable[int]) -> dict[int, bytes | None]:
        """Point-look-up many keys in one batched pass.

        Equivalent to ``{k: db.get(k) for k in keys}`` — absent and deleted
        keys map to None — but resolved as a batch:

        * duplicate keys are deduplicated up front, so each distinct key
          runs the probe pipeline (and is counted in
          ``stats.point_queries``) exactly once;
        * the memtable answers the whole batch in one pass;
        * surviving keys are grouped per run, newest to oldest, and every
          run's filter answers its whole group with **one**
          :meth:`~repro.filters.base.KeyFilter.may_contain_batch` probe
          (each counted in ``PerfStats.filter_batch_probes``, like the
          range path's frontier sweeps);
        * ``last_query`` holds one aggregated ``kind="multi_point"``
          :class:`~repro.lsm.perf_context.QueryContext` for the batch
          instead of the final key's.

        Run recency is preserved: a key resolved by a newer run (value or
        tombstone) is never probed against older runs, so verdicts, values,
        and per-run filter true/false-positive counters match the per-key
        :meth:`get` loop exactly.
        """
        self._check_open()
        requested = 0
        distinct: list[int] = []
        seen: set[int] = set()
        for key in keys:
            requested += 1
            key = int(key)
            if key not in seen:
                seen.add(key)
                distinct.append(key)
        if not distinct:
            return {}
        encoded = [self._encode_key(key) for key in distinct]
        self.stats.point_queries += len(distinct)
        self.stats.multi_point_queries += 1
        for _ in distinct:
            self.tracker.record_point_query()
        context = QueryContext(
            kind="multi_point",
            low=min(distinct),
            high=max(distinct),
            keys_requested=requested,
            distinct_keys=len(distinct),
        )
        before = self.stats.snapshot()
        values: dict[int, bytes | None] = {}
        try:
            # Memtable pass: buffered entries (puts and tombstones) resolve
            # immediately and never reach the filters.
            pending: list[tuple[int, bytes]] = []
            for key, enc in zip(distinct, encoded):
                buffered = self._memtable.get(enc)
                if buffered is None:
                    pending.append((key, enc))
                    continue
                tag, value = buffered
                context.memtable_hits += 1
                values[key] = value if tag == ValueTag.PUT else None

            # Run passes, newest to oldest: one bulk filter probe per run
            # for the still-unresolved keys inside its fence span.
            for run in self._version.all_runs_newest_first():
                if not pending:
                    break
                group = [kv for kv in pending if run.overlaps(kv[1], kv[1])]
                if not group:
                    continue
                context.runs_considered += 1
                verdicts = self._probe_filter_point_batch(
                    run, [key for key, _ in group]
                )
                resolved: set[int] = set()
                for (key, enc), verdict in zip(group, verdicts):
                    if not verdict:
                        continue
                    context.iterators_created += 1
                    found = run.reader.get(enc)
                    truly_there = found is not None
                    self._record_filter_outcome(
                        run, positive=True, truly=truly_there
                    )
                    self.tracker.record_filter_outcome(True, truly_there)
                    if found is not None:
                        tag, value = found
                        values[key] = value if tag == ValueTag.PUT else None
                        resolved.add(key)
                if resolved:
                    pending = [kv for kv in pending if kv[0] not in resolved]

            for key, _ in pending:
                values[key] = None
            results = {key: values[key] for key in distinct}
            context.results = sum(1 for v in results.values() if v is not None)
            return results
        finally:
            self._finish_context(context, before)

    def _probe_filter_point_batch(
        self, run: Run, keys: list[int]
    ) -> Sequence[bool]:
        """Bulk sibling of :meth:`_probe_filter_point` for one run's group."""
        filt = self._filter_dictionary.get_filter(run.reader, self.stats)
        with Stopwatch(self.stats, "filter_probe_ns"):
            verdicts, batch_sweeps = batched_point_verdicts(filt, keys)
        self.stats.filter_batch_probes += batch_sweeps
        if filt is not None:
            self.stats.filter_probes += len(keys)
            negatives = len(keys) - sum(1 for v in verdicts if v)
            self.stats.filter_negatives += negatives
            for _ in range(negatives):
                self.tracker.record_filter_outcome(False, False)
        return verdicts

    def iterator(
        self, start: int | None = None, end: int | None = None
    ) -> Iterator[tuple[int, bytes]]:
        """Ordered scan over live entries, optionally bounded (inclusive).

        This is the full-scan path — the RocksDB-iterator analogue.  It
        deliberately bypasses the range filters: a scan reads the data
        anyway, so there is nothing for a filter to prune (the paper's
        filters matter for *selective* range queries, served by
        :meth:`range_query`).
        """
        self._check_open()
        start_bytes = self._encode_key(start if start is not None else 0)
        end_bytes = (
            self._encode_key(end)
            if end is not None
            else b"\xff" * self.options.key_width_bytes
        )
        sources: list[tuple[int, Iterator]] = []
        priority = 0
        if not self._memtable.is_empty:
            sources.append((priority, self._memtable.entries_from(start_bytes)))
            priority += 1
        for offset, run in enumerate(
            self._version.runs_for_range(start_bytes, end_bytes)
        ):
            sources.append((priority + offset, run.reader.iterate_from(start_bytes)))
        for key, value in live_entries(MergingIterator(sources)):
            if key > end_bytes:
                return
            yield self._decode_key(key), value

    # ------------------------------------------------------------------
    # Adaptive tuning (§2.4)
    # ------------------------------------------------------------------
    def retune_filters(
        self,
        tuner: AutoTuner | None = None,
        bits_per_key: float | None = None,
    ) -> TuningDecision:
        """Re-derive the Rosetta recipe from observed workload statistics.

        Future flushes and compactions build filters with the recommended
        strategy/max-range; existing runs keep their filters until they are
        next compacted, matching the paper's compaction-time reconciliation.
        """
        self._check_open()
        tuner = tuner if tuner is not None else AutoTuner()
        decision = tuner.recommend(self.tracker)
        if bits_per_key is None:
            current = self._current_filter_factory
            bits_per_key = (
                current.bits_per_key
                if current is not None and current.bits_per_key is not None
                else 22.0
            )
        kwargs = decision.build_kwargs()
        key_bits = self.options.key_bits

        def build(keys, _kwargs=kwargs, _bpk=bits_per_key, _kb=key_bits) -> KeyFilter:
            filt = RosettaFilter(key_bits=_kb, bits_per_key=_bpk, **_kwargs)
            filt.populate(keys)
            return filt

        self._current_filter_factory = FilterFactory(
            name=f"rosetta-tuned[{decision.strategy}]",
            builder=build,
            bits_per_key=bits_per_key,
        )
        return decision

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def approximate_size(self, low: int, high: int) -> int:
        """Estimated on-disk bytes covering ``[low, high]`` (no I/O).

        The ``GetApproximateSizes`` analogue: sums the fence-pointer block
        sizes of every overlapping run.  Block-granular and level-additive
        (overlapping runs each contribute), so it upper-bounds the live
        data in the range.
        """
        self._check_open()
        if low > high:
            raise FilterQueryError(f"invalid range: low={low} > high={high}")
        low_bytes = self._encode_key(low)
        high_bytes = self._encode_key(
            min(high, (1 << self.options.key_bits) - 1)
        )
        return sum(
            run.reader.approximate_bytes_in_range(low_bytes, high_bytes)
            for run in self._version.runs_for_range(low_bytes, high_bytes)
        )

    def verify(self):
        """Walk every SST and validate checksums, ordering, and filters.

        The ``VerifyChecksum`` analogue; returns a
        :class:`~repro.lsm.verify.VerificationReport` (never raises on
        corruption — inspect ``report.ok`` / ``report.errors``).
        """
        from repro.lsm.verify import verify_version

        self._check_open()
        return verify_version(self._version)

    def describe(self) -> str:
        """Tree shape summary."""
        memtable_line = (
            f"memtable: {len(self._memtable)} entries, "
            f"{self._memtable.approximate_bytes} bytes"
        )
        return memtable_line + "\n" + self._version.describe()

    def num_live_files(self) -> int:
        """Number of SST files currently in the tree."""
        return self._version.total_files()

    @property
    def version(self) -> Version:
        """The current level/run metadata (read-mostly)."""
        return self._version

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _write_manifest(self) -> None:
        manifest = {
            "level0": [run.name for run in self._version.level0],
            "levels": {
                str(level): [[run.name, run.group_id] for run in runs]
                for level, runs in self._version.levels.items()
            },
            # Workload statistics survive restarts so the §2.4 tuner can
            # keep learning across sessions.
            "tracker": self.tracker.to_dict(),
        }
        # Atomic replacement: a crash mid-write leaves the previous
        # manifest intact, never a torn half-JSON.
        self._env.write_file_atomic(
            _MANIFEST,
            json.dumps(manifest).encode(),
            fsync=self.options.manifest_fsync,
        )

    def _recover(self) -> None:
        referenced: set[str] = set()
        max_file_number = 0
        max_group_id = 0
        for file_name in self._env.list_files():
            match = _SST_NAME.match(file_name)
            if match:
                max_file_number = max(max_file_number, int(match.group(2)))
        if self._env.exists(_MANIFEST):
            manifest = json.loads(self._env.read_file(_MANIFEST))
            if "tracker" in manifest:
                self.tracker = WorkloadTracker.from_dict(manifest["tracker"])
            for name in manifest.get("level0", []):
                referenced.add(name)
                meta = self._read_meta(name)
                reader = SSTReader(
                    self._env, meta, self.options, self._cache, is_level0=True
                )
                self._version.level0.append(Run(reader=reader, level=0))
            for level_str, entries in manifest.get("levels", {}).items():
                level = int(level_str)
                runs = []
                for entry in entries:
                    name, group_id = entry
                    referenced.add(name)
                    max_group_id = max(max_group_id, int(group_id or 0))
                    meta = self._read_meta(name)
                    reader = SSTReader(
                        self._env, meta, self.options, self._cache, is_level0=False
                    )
                    runs.append(Run(reader=reader, level=level, group_id=group_id))
                if runs:
                    # Preserve manifest (recency) order verbatim; tiered
                    # levels legitimately hold overlapping groups.
                    self._version.levels[level] = runs
        # Recovery hygiene.  (1) Never reuse a live file name: a fresh
        # counter colliding with a recovered SST would let a later
        # compaction overwrite or delete live data.  (2) Purge obsolete
        # files — SSTs a crash orphaned before/after their manifest entry,
        # and torn ``.tmp`` halves of interrupted atomic replacements.
        self._compactor.advance_file_number(max_file_number)
        self._compactor.advance_group_id(max_group_id)
        for file_name in self._env.list_files():
            if file_name.endswith(".tmp") or (
                _SST_NAME.match(file_name) and file_name not in referenced
            ):
                self._env.delete_file(file_name)
        if self._wal is not None:
            for op, key, value in self._wal.replay():
                if op == BATCH_OP:
                    for tag, bkey, bvalue in WriteBatch.decode(value):
                        if tag == ValueTag.PUT:
                            self._memtable.put(bkey, bvalue)
                        else:
                            self._memtable.delete(bkey)
                elif op == ValueTag.PUT:
                    self._memtable.put(key, value)
                else:
                    self._memtable.delete(key)

    def _read_meta(self, name: str) -> SSTMeta:
        """Reconstruct SSTMeta by reading the file's meta block."""
        import struct

        file_size = self._env.file_size(name)
        footer = self._env.read_block(name, file_size - 52, 52)
        fields = struct.Struct("<QQQQQQI").unpack(footer)
        meta_payload = self._env.read_block(name, fields[4], fields[5])
        (num_entries,) = struct.unpack_from("<Q", meta_payload, 0)
        (min_len,) = struct.unpack_from("<I", meta_payload, 8)
        min_key = meta_payload[12 : 12 + min_len]
        (max_len,) = struct.unpack_from("<I", meta_payload, 12 + min_len)
        max_key = meta_payload[16 + min_len : 16 + min_len + max_len]
        return SSTMeta(
            name=name,
            num_entries=num_entries,
            min_key=min_key,
            max_key=max_key,
            file_size=file_size,
        )

    def close(self) -> None:
        """Flush if possible, persist the manifest, release file handles.

        Safe in degraded read-only mode: the failing flush is skipped (the
        WAL still holds the buffered writes), the manifest is persisted
        best-effort, and nothing raises — so ``with DB(...)`` never throws
        from ``__exit__`` because a background write failed earlier.
        """
        if self._closed:
            return
        try:
            if self._background_error is None:
                self._run_background("flush", self._flush_body)
            try:
                self._write_manifest()
            except PowerCutError:
                raise
            except (OSError, ReproError):
                pass  # best-effort; the last durable manifest still stands
        finally:
            self._env.close()
            self._closed = True

    def _check_open(self) -> None:
        if self._closed:
            raise ClosedStoreError("operation on a closed DB")

    def __enter__(self) -> "DB":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
