"""Level/run metadata — which SST files make up the tree right now.

``Version`` tracks L0 (overlapping files, newest first — each a flushed
memtable) and levels 1+ (sorted, non-overlapping files forming one run per
level).  Readers enumerate runs newest-to-oldest so the merging iterator's
priorities implement shadowing; compaction swaps file sets atomically.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import StoreError
from repro.lsm.sstable import SSTReader

__all__ = ["Run", "Version"]


@dataclass
class Run:
    """One SST file plus its reader handle and its level.

    ``group_id`` ties together the files produced by one merge: under
    tiered compaction a level holds several sorted *groups* (runs in the
    LSM sense), each possibly spanning multiple size-capped files.  Files
    in the same group never overlap; files in different groups may.
    Leveled compaction leaves it None (one group per level).
    """

    reader: SSTReader
    level: int
    group_id: int | None = None

    @property
    def name(self) -> str:
        """File name of the SST."""
        return self.reader.meta.name

    @property
    def file_size(self) -> int:
        """Size of the SST file in bytes."""
        return self.reader.meta.file_size

    def overlaps(self, low: bytes, high: bytes) -> bool:
        """Whether the run's key span intersects ``[low, high]``."""
        return self.reader.meta.overlaps(low, high)


@dataclass
class Version:
    """Mutable view of the current tree shape."""

    level0: list[Run] = field(default_factory=list)  # newest first
    levels: dict[int, list[Run]] = field(default_factory=dict)  # level -> sorted runs

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def clone(self) -> "Version":
        """Shallow copy-on-write snapshot (shares the :class:`Run` objects).

        Background installs mutate a clone and swap it in atomically via
        the DB's superversion, so concurrent readers keep iterating a
        frozen shape while flush/compaction edits the copy.
        """
        return Version(
            level0=list(self.level0),
            levels={level: list(runs) for level, runs in self.levels.items()},
        )

    def add_level0(self, run: Run) -> None:
        """Register a freshly flushed L0 file (most recent first)."""
        self.level0.insert(0, run)

    def install_level(self, level: int, runs: list[Run]) -> None:
        """Replace the whole file set of ``level`` (leveled compaction).

        Enforces the leveled invariant: one sorted, non-overlapping run.
        """
        if level < 1:
            raise StoreError("install_level applies to levels >= 1")
        runs = sorted(runs, key=lambda r: r.reader.meta.min_key)
        for left, right in zip(runs, runs[1:]):
            if left.reader.meta.max_key >= right.reader.meta.min_key:
                raise StoreError(
                    f"level {level} files overlap after compaction"
                )
        self.levels[level] = runs

    def merge_into_level(
        self, level: int, runs: list[Run], removed_names: set[str]
    ) -> None:
        """Union-merge ``runs`` into ``level``, dropping ``removed_names``.

        The concurrent-compaction install path: the level may have gained
        runs (from another job's install) between plan and apply, so a
        whole-level replace would clobber them.  Survivors — runs at the
        level that were not inputs to this job — are kept and the job's
        outputs merged in; :meth:`install_level` still enforces the
        non-overlap invariant over the union.
        """
        survivors = [
            run
            for run in self.levels.get(level, [])
            if run.name not in removed_names
        ]
        self.install_level(level, survivors + runs)

    def prepend_group(self, level: int, runs: list[Run]) -> None:
        """Add a fresh sorted group at the *front* of ``level`` (tiered).

        Groups at a tiered level may overlap each other; recency order is
        list order (newest first), which the merging iterator's priorities
        rely on for shadowing.
        """
        if level < 1:
            raise StoreError("prepend_group applies to levels >= 1")
        ordered = sorted(runs, key=lambda r: r.reader.meta.min_key)
        for left, right in zip(ordered, ordered[1:]):
            if left.reader.meta.max_key >= right.reader.meta.min_key:
                raise StoreError("files within one group must not overlap")
        self.levels[level] = ordered + self.levels.get(level, [])

    def num_groups(self, level: int) -> int:
        """Distinct sorted groups at ``level`` (files w/o a group count 1 each)."""
        runs = self.level_runs(level)
        group_ids = {run.group_id for run in runs if run.group_id is not None}
        loose = sum(1 for run in runs if run.group_id is None)
        return len(group_ids) + loose

    def clear_level0(self) -> list[Run]:
        """Remove and return all L0 runs (they were just compacted)."""
        runs, self.level0 = self.level0, []
        return runs

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def level_runs(self, level: int) -> list[Run]:
        """Runs at ``level`` (sorted by min key for level >= 1)."""
        if level == 0:
            return list(self.level0)
        return list(self.levels.get(level, []))

    def level_size_bytes(self, level: int) -> int:
        """Total file bytes at ``level``."""
        return sum(run.file_size for run in self.level_runs(level))

    def level_span(self, level: int) -> tuple[bytes | None, bytes | None]:
        """Inclusive key span covered by ``level``; (None, None) when empty."""
        runs = self.level_runs(level)
        if not runs:
            return None, None
        low = min(run.reader.meta.min_key for run in runs)
        high = max(run.reader.meta.max_key for run in runs)
        return low, high

    def overlap_closure(
        self, level: int, low: bytes | None, high: bytes | None
    ) -> list[Run]:
        """Runs at ``level`` intersecting ``[low, high]`` (inclusive).

        The compaction-input closure: every target-level run a merge over
        ``[low, high]`` must rewrite, and nothing else.  ``None`` bounds
        mean unbounded on that side.  For levels >= 1 (sorted,
        non-overlapping) the result is a contiguous block of the level's
        run list, which is what makes partial-level installs safe: runs
        outside the closure cannot intersect the merge's key footprint.
        """
        selected = []
        for run in self.level_runs(level):
            meta = run.reader.meta
            if low is not None and meta.max_key < low:
                continue
            if high is not None and meta.min_key > high:
                continue
            selected.append(run)
        return selected

    def max_populated_level(self) -> int:
        """Deepest level holding any file (0 when only L0/nothing)."""
        populated = [lvl for lvl, runs in self.levels.items() if runs]
        return max(populated) if populated else 0

    def all_runs_newest_first(self) -> list[Run]:
        """Every run ordered by recency: L0 newest-first, then L1, L2, ..."""
        ordered = list(self.level0)
        for level in sorted(self.levels):
            ordered.extend(self.levels[level])
        return ordered

    def runs_for_range(self, low: bytes, high: bytes) -> list[Run]:
        """Runs whose key span intersects ``[low, high]``, newest first."""
        return [run for run in self.all_runs_newest_first() if run.overlaps(low, high)]

    def runs_for_key(self, key: bytes) -> list[Run]:
        """Runs that may hold ``key``, newest first."""
        return self.runs_for_range(key, key)

    def total_files(self) -> int:
        """Number of live SST files."""
        return len(self.level0) + sum(len(r) for r in self.levels.values())

    def describe(self) -> str:
        """Human-readable tree shape, one line per populated level."""
        lines = [f"L0: {len(self.level0)} files"]
        for level in sorted(self.levels):
            runs = self.levels[level]
            if runs:
                size_mb = sum(r.file_size for r in runs) / (1 << 20)
                lines.append(f"L{level}: {len(runs)} files, {size_mb:.2f} MiB")
        return "\n".join(lines)
