"""Deterministic fault-injection storage environment.

The RocksDB ``FaultInjectionTestFS`` analogue: a :class:`StorageEnv`
subclass that can *provoke*, on demand and reproducibly, every failure the
store claims to survive —

* **transient read errors** (:class:`~repro.errors.TransientIOError`):
  scripted (``fail_next_reads``) or probabilistic (``transient_read_error_rate``),
  exercised against the env's bounded retry policy;
* **permanent read errors** (``fail_file_reads``): every read of one file
  raises ``OSError``, never retried;
* **write errors** (``fail_next_writes``): the next durable write raises
  ``OSError`` with no partial state — the background-error path;
* **bit flips** (``corrupt_file``): seeded on-disk byte flips, caught by the
  per-block CRCs / envelope checksums downstream;
* **torn appends** (``tear_next_append``): the next log append persists only
  a prefix of its frame — the torn-tail case WAL replay must drop;
* **power-cut semantics**: every durable operation is a numbered *sync
  point*; :meth:`schedule_crash` arms a countdown, and when it fires the
  in-flight operation is applied *partially* (seeded), a
  :class:`~repro.errors.PowerCutError` propagates, and :meth:`crash` then
  destroys whatever a real power loss could destroy — any suffix of
  unsynced bytes — before the store is reopened cold.

Determinism: all randomness flows from one ``random.Random(seed)``, so a
failing ``(seed, crash_point)`` pair replays exactly.

Everything injected is tallied in :attr:`injected`, so tests can assert
*counter parity*: every injected fault shows up in ``PerfStats``
(``io_transient_errors``) or the health report — nothing fails silently.
"""

from __future__ import annotations

import os
import random
from collections import Counter
from typing import Callable

from repro.errors import PowerCutError, TransientIOError
from repro.lsm.env import DeviceModel, StorageEnv
from repro.lsm.stats import PerfStats

__all__ = ["FaultInjectionEnv"]


class FaultInjectionEnv(StorageEnv):
    """A :class:`StorageEnv` that injects seeded faults at the I/O boundary.

    Drop-in for the real env via ``DBOptions.env_factory``::

        env_box = []
        options = DBOptions(env_factory=lambda root, device, stats:
                            env_box.append(FaultInjectionEnv(
                                root, device, stats, seed=7)) or env_box[-1])

    (or construct it directly and hand it to the torture harness, which
    owns the wiring).
    """

    def __init__(
        self,
        root: str,
        device: str | DeviceModel = "memory",
        stats: PerfStats | None = None,
        *,
        seed: int = 0,
        transient_read_error_rate: float = 0.0,
    ) -> None:
        super().__init__(root, device, stats)
        self.rng = random.Random(seed)
        #: Probability that any single block read transiently fails.
        self.transient_read_error_rate = transient_read_error_rate
        #: Injection tally, keyed by fault kind (counter-parity checks).
        self.injected: Counter[str] = Counter()
        #: Sync points performed so far (crash-point enumeration).
        self.durable_ops = 0
        self._fail_next_reads = 0
        self._fail_next_writes = 0
        self._fail_permanent: set[str] = set()
        self._tear_next_append = False
        self._crash_countdown: int | None = None
        self._crashed = False
        # Durable length per file: bytes guaranteed to survive a power cut.
        # Files present before injection starts are durable as found.
        self._synced_len: dict[str, int] = {
            name: os.path.getsize(os.path.join(root, name))
            for name in os.listdir(root)
        }

    # ------------------------------------------------------------------
    # Fault scripting
    # ------------------------------------------------------------------
    def fail_next_reads(self, count: int = 1) -> None:
        """Make the next ``count`` block reads raise transient errors."""
        self._fail_next_reads += count

    def fail_next_writes(self, count: int = 1) -> None:
        """Make the next ``count`` durable writes raise ``OSError``.

        Models a full/failing device: the write never happens (no partial
        state), the error propagates, and the store's background-error
        machinery decides what survives.
        """
        self._fail_next_writes += count

    def fail_file_reads(self, name: str) -> None:
        """Make every read of ``name`` raise ``OSError`` (permanent)."""
        self._fail_permanent.add(name)

    def heal_file_reads(self, name: str) -> None:
        """Undo :meth:`fail_file_reads`."""
        self._fail_permanent.discard(name)

    def tear_next_append(self) -> None:
        """Persist only a seeded prefix of the next append (torn write)."""
        self._tear_next_append = True

    def corrupt_file(self, name: str, count: int = 1,
                     offset: int | None = None) -> list[int]:
        """Flip ``count`` seeded bytes of ``name`` on disk; returns offsets."""
        path = self.path(name)
        size = os.path.getsize(path)
        offsets = (
            [offset] if offset is not None
            else [self.rng.randrange(size) for _ in range(count)]
        )
        with open(path, "r+b") as handle:
            for position in offsets:
                handle.seek(position)
                byte = handle.read(1)[0]
                handle.seek(position)
                handle.write(bytes([byte ^ (1 << self.rng.randrange(8))]))
        # Drop any read handle so the next read sees the flipped bytes.
        stale = self._handles.pop(name, None)
        if stale is not None:
            stale.close()
        self.injected["bit_flips"] += len(offsets)
        return offsets

    def schedule_crash(self, after_ops: int) -> None:
        """Power-cut at the ``after_ops``-th durable operation from now."""
        if after_ops < 1:
            raise ValueError("after_ops must be >= 1")
        self._crash_countdown = after_ops

    @property
    def crashed(self) -> bool:
        """Whether a scheduled power cut has fired."""
        return self._crashed

    def crash(self) -> None:
        """Apply the power cut: destroy any suffix of unsynced bytes.

        Every file keeps its durable prefix plus a *seeded* fraction of
        whatever was appended after the last sync barrier (a real device
        persists an arbitrary prefix of in-flight writes).  Stray ``.tmp``
        files from interrupted atomic replacements are removed, read
        handles dropped, and the env is left cold for recovery to reopen.
        """
        for handle in self._handles.values():
            handle.close()
        self._handles.clear()
        for name in sorted(os.listdir(self.root)):
            path = os.path.join(self.root, name)
            if name.endswith(".tmp"):
                os.remove(path)
                continue
            synced = self._synced_len.get(name)
            if synced is None:
                # Created and never synced: anything may survive — keep a
                # seeded prefix (possibly empty).
                synced = 0
            size = os.path.getsize(path)
            if size > synced:
                keep = synced + self.rng.randint(0, size - synced)
                with open(path, "r+b") as handle:
                    handle.truncate(keep)
                self._synced_len[name] = keep
        self.injected["crashes"] += 1
        self._crashed = False
        self._crash_countdown = None

    # ------------------------------------------------------------------
    # Crash-point machinery
    # ------------------------------------------------------------------
    def _check_alive(self) -> None:
        if self._crashed:
            raise PowerCutError("I/O on a powered-off store")

    def _sync_point(self, partial_effect: Callable[[], None]) -> None:
        """Count one durable op; fire the scheduled crash if it's due.

        ``partial_effect`` applies the seeded half-finished version of the
        interrupted operation before the :class:`PowerCutError` propagates.
        """
        self._check_alive()
        self.durable_ops += 1
        if self._crash_countdown is None:
            return
        self._crash_countdown -= 1
        if self._crash_countdown > 0:
            return
        self._crashed = True
        # The machine is dead: no more scheduler yields.  The partial
        # effect below reuses the base durable ops, which would otherwise
        # hand control to another task mid-power-cut.
        self.yield_hook = None
        partial_effect()
        self.injected["power_cuts"] += 1
        raise PowerCutError(f"simulated power cut at durable op {self.durable_ops}")

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def _maybe_fail_read(self, name: str) -> None:
        self._check_alive()
        if name in self._fail_permanent:
            self.injected["permanent_read_errors"] += 1
            raise OSError(f"injected permanent read error on {name}")
        if self._fail_next_reads > 0:
            self._fail_next_reads -= 1
            self.injected["transient_read_errors"] += 1
            raise TransientIOError(f"injected transient read error on {name}")
        if (
            self.transient_read_error_rate
            and self.rng.random() < self.transient_read_error_rate
        ):
            self.injected["transient_read_errors"] += 1
            raise TransientIOError(f"injected transient read error on {name}")

    def _read_block_once(self, name: str, offset: int, size: int) -> bytes:
        self._maybe_fail_read(name)
        return super()._read_block_once(name, offset, size)

    def _read_file_once(self, name: str) -> bytes:
        self._maybe_fail_read(name)
        return super()._read_file_once(name)

    # ------------------------------------------------------------------
    # Writes (each one is a sync point)
    # ------------------------------------------------------------------
    def _maybe_fail_write(self, name: str) -> None:
        self._check_alive()
        if self._fail_next_writes > 0:
            self._fail_next_writes -= 1
            self.injected["write_errors"] += 1
            raise OSError(f"injected write error on {name}")

    def write_file(self, name: str, payload: bytes, sync: bool = True) -> None:
        self._maybe_fail_write(name)

        def partial() -> None:
            cut = self.rng.randint(0, len(payload))
            super(FaultInjectionEnv, self).write_file(name, payload[:cut])
            self._synced_len.setdefault(name, 0)  # nothing of it is durable

        self._sync_point(partial)
        super().write_file(name, payload, sync)
        if sync:
            self._synced_len[name] = len(payload)
        else:
            self._synced_len.setdefault(name, 0)

    def write_file_atomic(
        self, name: str, payload: bytes, fsync: bool = False
    ) -> None:
        self._maybe_fail_write(name)

        def partial() -> None:
            # Crash mid-replacement: the tmp file is torn, the target is
            # untouched — that is the whole point of atomic replacement.
            cut = self.rng.randint(0, len(payload))
            super(FaultInjectionEnv, self).write_file(name + ".tmp", payload[:cut])

        self._sync_point(partial)
        super().write_file_atomic(name, payload, fsync)
        self._synced_len[name] = len(payload)

    def append_file(self, name: str, payload: bytes) -> None:
        self._maybe_fail_write(name)

        def partial() -> None:
            cut = self.rng.randint(0, len(payload))
            super(FaultInjectionEnv, self).append_file(name, payload[:cut])
            self._synced_len.setdefault(name, 0)

        self._sync_point(partial)
        if self._tear_next_append:
            self._tear_next_append = False
            self.injected["torn_appends"] += 1
            payload = payload[: self.rng.randint(0, max(len(payload) - 1, 0))]
        self._synced_len.setdefault(name, 0)
        super().append_file(name, payload)

    def sync_file(self, name: str) -> None:
        def partial() -> None:
            # The barrier itself may or may not have reached the platter.
            if self.rng.random() < 0.5 and os.path.exists(self.path(name)):
                self._synced_len[name] = os.path.getsize(self.path(name))

        self._sync_point(partial)
        if os.path.exists(self.path(name)):
            self._synced_len[name] = os.path.getsize(self.path(name))

    def delete_file(self, name: str) -> None:
        def partial() -> None:
            if self.rng.random() < 0.5:
                super(FaultInjectionEnv, self).delete_file(name)
                self._synced_len.pop(name, None)

        self._sync_point(partial)
        super().delete_file(name)
        self._synced_len.pop(name, None)
