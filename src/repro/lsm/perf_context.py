"""Per-query performance context — the RocksDB ``PerfContext`` analogue.

``PerfStats`` aggregates over a DB's lifetime; debugging a *single* slow
query needs per-operation numbers: how many runs were considered, how many
filters answered negative, how many blocks were actually read.  The DB
fills one :class:`QueryContext` per read operation and exposes the most
recent via ``db.last_query``.

The paper's §4 discussion ("the number of iterators is equal to the number
of SST files") is directly observable here: ``iterators_created`` counts
exactly the child iterators a query wired into its merge.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["QueryContext"]


@dataclass
class QueryContext:
    """Counters for one point, range, or batched multi-point query.

    ``kind="multi_point"`` aggregates a whole :meth:`DB.multi_get` batch
    into one context: ``low``/``high`` span the distinct keys requested,
    ``runs_considered`` counts the runs that received at least one batched
    probe, and the ``keys_requested`` / ``distinct_keys`` /
    ``memtable_hits`` trio describes the batch shape.
    """

    kind: str = ""
    low: int = 0
    high: int = 0

    runs_considered: int = 0      # overlapping runs after fence pruning
    filters_probed: int = 0
    filter_negatives: int = 0
    iterators_created: int = 0    # per-run child iterators actually opened
    blocks_read: int = 0          # block fetches (cache misses)
    block_cache_hits: int = 0
    results: int = 0              # live entries returned
    memtable_hit: bool = False

    # multi_point only: batch shape.
    keys_requested: int = 0       # input keys, duplicates included
    distinct_keys: int = 0        # lookups actually resolved
    memtable_hits: int = 0        # keys answered by the memtable alone

    notes: list[str] = field(default_factory=list)

    @property
    def runs_pruned_by_filters(self) -> int:
        """Runs the filters excused from I/O."""
        return self.filter_negatives

    def summary(self) -> str:
        """One-line human-readable digest."""
        if self.kind == "point":
            label = f"point({self.low})"
        elif self.kind == "multi_point":
            label = (
                f"multi_point({self.distinct_keys} keys in "
                f"[{self.low}, {self.high}], {self.memtable_hits} memtable)"
            )
        else:
            label = f"range[{self.low}, {self.high}]"
        return (
            f"{label}: {self.runs_considered} runs considered, "
            f"{self.filters_probed} filters probed "
            f"({self.filter_negatives} negative), "
            f"{self.iterators_created} iterators, "
            f"{self.blocks_read} block reads "
            f"({self.block_cache_hits} cache hits), "
            f"{self.results} result(s)"
        )
