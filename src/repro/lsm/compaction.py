"""Leveled/tiered compaction — merge runs downward, rebuilding filters.

Policy (RocksDB leveled, per-file granularity):

* L0 reaching ``level0_file_num_compaction_trigger`` files merges all of
  L0 (L0 files overlap arbitrarily) with the L1 runs intersecting L0's key
  span — the *overlap closure* — into fresh L1 files of at most
  ``sst_size_bytes``.
* A level exceeding its size target (``max_bytes_for_level_base * ratio^i``)
  merges down in bounded *windows*: up to ``max_compaction_input_files``
  contiguous source runs (oldest window first) plus their overlap closure
  at the target level, so one oversize level yields several independent
  jobs with disjoint key-range footprints instead of one giant merge.
* Candidates are ordered by a *debt score* — L0 run count over its
  trigger (weighted to always dominate) before bytes-over-target ratio of
  the deeper levels — not by fixed level order.
* Tombstones survive until the output is the bottom-most populated level,
  where they are dropped.  Level >= 1 runs are key-partitioned, so the
  whole-level rule is exact for partial windows too: any older version of
  a key in the window lives in the window itself, its closure, or a
  deeper level.

"During background compactions, a new filter instance is built for the
merged content of the new SST, while the filter instances for the old SSTs
are destroyed" (§4) — old files are deleted, their block-cache entries and
filter-dictionary entries dropped, and the new SSTs get fresh filters built
by the configured factory (charged to the Fig. 6 construction counters).

Job API
-------
Compaction is split into three phases so the DB's maintenance scheduler
can interleave it safely with foreground work:

``plan(version) -> CompactionJob | None``
    Read of the tree shape plus the conflict table: walks the
    trigger-satisfying merge candidates in debt-score order (L0 debt
    always first, then deeper levels by bytes-over-target ratio, windows
    within a level oldest-first) and returns the first whose inputs and
    key-range footprint are disjoint from every in-flight job — so with
    multiple job slots, plan() hands out *overlappable* work instead of
    blocking behind the top candidate.  ``forced_l0_job`` and
    ``full_compaction_job`` build the explicit-``compact()`` /
    ``force_full_compaction()`` variants regardless of triggers.
``begin(job, version_provider=None)`` / ``finish(job)``
    Conflict-table bracket around a job's lifetime.  ``begin`` re-checks
    and registers atomically (raises on a lost race), issues the job its
    monotonic ``job_id``, and — when given a version provider — re-reads
    the *current* version under the table lock to verify every planned
    input run is still live and to re-derive ``drop_tombstones``, so a
    job planned against a stale snapshot can never execute against
    deleted runs or wrongly drop tombstones.  ``finish`` always runs,
    success or not.  The invariants the table enforces: no two in-flight
    jobs share an input run, and two leveled jobs may share a level only
    when their key-range footprints are disjoint (tiered installs are
    prepend/name-removal only, so disjoint-input tiered jobs may always
    share a level).
``execute(job, scheduler=None, max_subcompactions=1) -> list[Run]``
    The expensive part — merge the input runs into fresh output SSTs.
    Touches no shared version state, so it runs unlocked on a worker.
    With ``max_subcompactions > 1`` and a scheduler, the merge splits
    into disjoint key-range slices (cut at input-block fence keys, the
    RocksDB subcompaction heuristic) executed work-stealing style by
    helper jobs, then stitched back into one output list for a single
    atomic install.
``apply(version, job, outputs)``
    Pure metadata edit: swap inputs for outputs on a ``Version`` *clone*
    under the DB mutex.  Removal is name-based and installation
    union-merges with the level's surviving runs, so an install never
    clobbers state published by a concurrent job.  The caller persists
    the manifest and installs the clone atomically; input files are
    destroyed afterwards (and only once no reader still holds a
    superversion referencing them) via :meth:`destroy_runs`.

Name/group counters are lock-protected because flush jobs and compaction
jobs allocate file names concurrently; the conflict table has its own
``_inflight_lock`` (leaf lock, nothing is acquired while holding it).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Iterable

from repro.core.tuning import AutoTuner
from repro.errors import PowerCutError, StoreError
from repro.filters.base import FilterFactory
from repro.lsm.block_cache import BlockCache
from repro.lsm.env import StorageEnv
from repro.lsm.filter_integration import FilterDictionary
from repro.lsm.format import ValueTag, sst_file_number
from repro.lsm.iterators import MergingIterator
from repro.lsm.options import DBOptions
from repro.lsm.sstable import SSTReader, SSTWriter
from repro.lsm.version import Run, Version

__all__ = ["Compactor", "CompactionJob"]


@dataclass
class CompactionJob:
    """One planned merge: what goes in, where the output lands.

    ``kind`` is one of ``leveled-l0`` (all of L0 + its L1 overlap closure
    -> L1), ``leveled-level`` (a window of Ln runs + its Ln+1 overlap
    closure -> Ln+1), ``tiered-l0`` / ``tiered-level`` (whole level ->
    one fresh group prepended at the target), or ``full`` (everything ->
    the bottom level).  ``inputs`` are recency-ordered, which is what
    makes the merging iterator's newest-wins shadowing correct.

    ``range_low`` / ``range_high`` are the job's inclusive key-range
    footprint — the span of every input run, which also bounds every
    output key.  ``None`` means unbounded on that side (``full`` jobs,
    hand-built jobs); the conflict table treats an unbounded side as
    overlapping everything.  ``debt_score`` is the picker's priority
    (diagnostics only); ``job_id`` is the monotonic conflict-table key
    issued by :meth:`Compactor.begin`.
    """

    kind: str
    inputs: list[Run]
    output_level: int
    drop_tombstones: bool
    source_level: int = 0
    range_low: bytes | None = None
    range_high: bytes | None = None
    debt_score: float = 0.0
    job_id: int | None = None


@dataclass(frozen=True)
class _InflightJob:
    """Conflict-table registration: what an in-flight job holds locked."""

    kind: str
    levels: frozenset[int]
    names: frozenset[str]
    range_low: bytes | None
    range_high: bytes | None


#: ``sst_<level>_<number>.sst`` — the number is allocation order, so the
#: lowest number in a window is its age (oldest-first window tiebreak).
#: Shared with SSTWriter, which mixes it into the per-file filter salt.
_file_number = sst_file_number


def _runs_span(runs: Iterable[Run]) -> tuple[bytes | None, bytes | None]:
    """Inclusive key span covering every run, or (None, None) when empty."""
    low: bytes | None = None
    high: bytes | None = None
    for run in runs:
        meta = run.reader.meta
        if low is None or meta.min_key < low:
            low = meta.min_key
        if high is None or meta.max_key > high:
            high = meta.max_key
    return low, high


class Compactor:
    """Plans and runs flush-triggered and size-triggered compactions."""

    def __init__(
        self,
        env: StorageEnv,
        options: DBOptions,
        cache: BlockCache,
        filter_dictionary: FilterDictionary,
        filter_factory_provider: Callable[[], FilterFactory | None] | None = None,
        tuner_provider: Callable[[], AutoTuner | None] | None = None,
    ) -> None:
        self._env = env
        self._options = options
        self._cache = cache
        self._filter_dictionary = filter_dictionary
        # Guards the name/group counters: flush (on one worker) and
        # compaction (possibly on another, or a forced foreground job)
        # both allocate file names.
        self._counter_lock = threading.Lock()
        self._next_file_number = 1
        self._next_group_id = 1
        # Conflict table: input-run names, {source, output} level pair,
        # and key-range footprint of every in-flight job, keyed by the
        # monotonic job_id issued at begin() (never by id(job): a dropped
        # job object's id can be recycled by a new allocation, aliasing
        # entries).  plan() consults it so concurrent jobs always work on
        # disjoint inputs.
        self._inflight_lock = threading.Lock()
        self._inflight: dict[int, _InflightJob] = {}
        self._next_job_id = 1
        # The auto-tuner can swap the factory between compactions (§2.4);
        # resolve it lazily at each compaction.
        self._filter_factory_provider = filter_factory_provider or (
            lambda: options.filter_factory
        )
        # Resolved per merge slice: quarantined inputs rebuild their
        # filters with the tuner's attack bits bonus.
        self._tuner_provider = tuner_provider or (lambda: None)

    def advance_file_number(self, past: int) -> None:
        """Never emit a file number <= ``past`` (recovery collision guard)."""
        with self._counter_lock:
            self._next_file_number = max(self._next_file_number, past + 1)

    def advance_group_id(self, past: int) -> None:
        """Never emit a group id <= ``past`` (recovery collision guard)."""
        with self._counter_lock:
            self._next_group_id = max(self._next_group_id, past + 1)

    # ------------------------------------------------------------------
    # Planning & conflict tracking
    # ------------------------------------------------------------------
    def plan(self, version: Version) -> CompactionJob | None:
        """Next runnable trigger-satisfying compaction, or None.

        "Runnable" means conflict-free against every in-flight job, so
        with jobs live this may skip the top-priority candidate and
        return deeper disjoint work instead.  With an empty conflict
        table it reduces to the classic single-job planner.
        """
        for job in self._candidates(version):
            if not self.conflicts(job):
                return job
        return None

    #: Weight making any triggered L0 candidate outrank any size-triggered
    #: deeper level: L0 debt stalls writers (the stop trigger watches the
    #: L0 run count), bytes-over-target only costs read amplification.
    _L0_DEBT_WEIGHT = 1_000_000.0

    def _candidates(self, version: Version) -> Iterable[CompactionJob]:
        """Trigger-satisfying merges, highest debt score first.

        L0's score is its run count over the trigger, weighted to dominate
        every size-triggered level; a deeper level scores its
        bytes-over-target ratio (ties broken shallowest-first).  Each
        oversize leveled level contributes one job per
        ``max_compaction_input_files``-wide source window (oldest window
        first), so the planner can hand out several disjoint jobs inside
        one level pair.
        """
        scored: list[tuple[float, int, list[CompactionJob]]] = []
        trigger = self._options.level0_file_num_compaction_trigger
        if len(version.level0) >= trigger:
            job = self.forced_l0_job(version)
            if job is not None:
                job.debt_score = (
                    self._L0_DEBT_WEIGHT * len(version.level0) / trigger
                )
                scored.append((job.debt_score, 0, [job]))
        if self._options.compaction_style == "tiered":
            ratio = self._options.level_size_ratio
            for level in range(1, self._options.num_levels - 1):
                groups = version.num_groups(level)
                if groups >= ratio:
                    inputs = version.level_runs(level)
                    low, high = _runs_span(inputs)
                    job = CompactionJob(
                        kind="tiered-level",
                        inputs=inputs,
                        output_level=level + 1,
                        drop_tombstones=self._tiered_bottom(version, level + 1),
                        source_level=level,
                        range_low=low,
                        range_high=high,
                        debt_score=groups / ratio,
                    )
                    scored.append((job.debt_score, level, [job]))
        else:
            for level in range(1, self._options.num_levels - 1):
                target = self._options.level_target_bytes(level)
                size = version.level_size_bytes(level)
                if size > target:
                    score = size / target
                    jobs = self._leveled_window_jobs(version, level)
                    for job in jobs:
                        job.debt_score = score
                    scored.append((score, level, jobs))
        attacked = self._attacked_runs()
        if attacked:
            self._add_quarantine_candidates(version, scored, attacked)
        scored.sort(key=lambda entry: (-entry[0], entry[1]))
        for _, _, jobs in scored:
            yield from jobs

    #: Weight pushing a quarantine rebuild ahead of every size-triggered
    #: candidate but below L0 debt (stalled writers still come first): a
    #: flagged filter leaks a device read per attack probe until rebuilt.
    _ATTACK_DEBT_BONUS = 500_000.0

    def _attacked_runs(self) -> frozenset[str]:
        """Names of runs the FP-feedback detector currently flags."""
        if self._filter_dictionary is None:
            return frozenset()
        return frozenset(self._filter_dictionary.under_attack_snapshot())

    def _add_quarantine_candidates(
        self,
        version: Version,
        scored: list[tuple[float, int, list[CompactionJob]]],
        attacked: frozenset[str],
    ) -> None:
        """Prioritize merges that rebuild filters flagged as under attack.

        Trigger-satisfying candidates whose inputs include a flagged run
        get their debt boosted in place; flagged runs no candidate covers
        get fresh jobs even though their level is under its trigger —
        re-salting the filter is the defense, and only a rebuild applies
        it.
        """
        covered: set[str] = set()
        for index, (score, level, jobs) in enumerate(scored):
            boosted = False
            for job in jobs:
                flagged = {
                    run.name for run in job.inputs if run.name in attacked
                }
                if flagged:
                    job.debt_score += self._ATTACK_DEBT_BONUS
                    covered |= flagged
                    boosted = True
            if boosted:
                scored[index] = (score + self._ATTACK_DEBT_BONUS, level, jobs)
        remaining = attacked - covered
        if remaining and any(
            run.name in remaining for run in version.level0
        ):
            job = self.forced_l0_job(version)
            if job is not None:
                job.debt_score = self._ATTACK_DEBT_BONUS
                scored.append((job.debt_score, 0, [job]))
                remaining -= {run.name for run in job.inputs}
        for level in range(1, self._options.num_levels - 1):
            if not remaining:
                return
            runs = version.level_runs(level)
            if not any(run.name in remaining for run in runs):
                continue
            if self._options.compaction_style == "tiered":
                low, high = _runs_span(runs)
                jobs = [
                    CompactionJob(
                        kind="tiered-level",
                        inputs=runs,
                        output_level=level + 1,
                        drop_tombstones=self._tiered_bottom(
                            version, level + 1
                        ),
                        source_level=level,
                        range_low=low,
                        range_high=high,
                        debt_score=self._ATTACK_DEBT_BONUS,
                    )
                ]
            else:
                jobs = [
                    job
                    for job in self._leveled_window_jobs(version, level)
                    if any(run.name in remaining for run in job.inputs)
                ]
                for job in jobs:
                    job.debt_score = self._ATTACK_DEBT_BONUS
            if jobs:
                scored.append((self._ATTACK_DEBT_BONUS, level, jobs))
                remaining -= {
                    run.name for job in jobs for run in job.inputs
                }

    def _leveled_window_jobs(
        self, version: Version, level: int
    ) -> list[CompactionJob]:
        """Per-file jobs draining one oversize leveled level.

        The level's sorted runs are cut into contiguous windows of up to
        ``max_compaction_input_files``; each window pulls its overlap
        closure at the target level (every target run intersecting the
        window's key span, nothing else) and carries the exact key-range
        footprint of that input set.  Windows are ordered oldest-first
        (lowest allocated file number), the RocksDB-style tiebreak that
        drains long-lived debt before fresh spill.
        """
        source = version.level_runs(level)
        if not source:
            return []
        width = max(1, self._options.max_compaction_input_files)
        windows = [
            source[start:start + width]
            for start in range(0, len(source), width)
        ]
        windows.sort(
            key=lambda window: min(_file_number(run.name) for run in window)
        )
        drop = version.max_populated_level() <= level + 1
        jobs = []
        for window in windows:
            span_low, span_high = _runs_span(window)
            closure = version.overlap_closure(level + 1, span_low, span_high)
            inputs = window + closure
            low, high = _runs_span(inputs)
            jobs.append(
                CompactionJob(
                    kind="leveled-level",
                    inputs=inputs,
                    output_level=level + 1,
                    drop_tombstones=drop,
                    source_level=level,
                    range_low=low,
                    range_high=high,
                )
            )
        return jobs

    #: Kinds whose install rewrites part of a level under the non-overlap
    #: invariant: they may share a level with another in-flight leveled
    #: job only when the two key-range footprints are disjoint.  Tiered
    #: installs are prepend/name-removal only, so disjoint-input tiered
    #: jobs may share a level unconditionally; mixed leveled/tiered level
    #: sharing stays forbidden (``full`` has an unbounded footprint, so
    #: the range check conflicts it with everything on its levels).
    _LEVELED_KINDS = frozenset({"leveled-l0", "leveled-level", "full"})

    def conflicts(self, job: CompactionJob) -> bool:
        """Whether ``job`` overlaps any in-flight job (inputs or ranges)."""
        names = frozenset(run.name for run in job.inputs)
        with self._inflight_lock:
            return self._conflicts_locked(job, names)

    @staticmethod
    def _ranges_overlap(
        a_low: bytes | None,
        a_high: bytes | None,
        b_low: bytes | None,
        b_high: bytes | None,
    ) -> bool:
        """Inclusive key-range intersection; ``None`` = unbounded side."""
        if a_low is not None and b_high is not None and b_high < a_low:
            return False
        if b_low is not None and a_high is not None and a_high < b_low:
            return False
        return True

    def _conflicts_locked(self, job: CompactionJob, names: frozenset[str]) -> bool:
        job_levels = {job.source_level, job.output_level}
        strict = job.kind in self._LEVELED_KINDS
        for entry in self._inflight.values():
            if names & entry.names:
                return True
            if (strict or entry.kind in self._LEVELED_KINDS) and (
                job_levels & entry.levels
            ):
                # Two leveled jobs with disjoint footprints may share a
                # level: outputs land inside the footprint, name-based
                # removal plus union-merge installs never touch the other
                # job's range, and the non-overlap invariant holds.
                if (
                    strict
                    and entry.kind in self._LEVELED_KINDS
                    and not self._ranges_overlap(
                        job.range_low,
                        job.range_high,
                        entry.range_low,
                        entry.range_high,
                    )
                ):
                    continue
                return True
        return False

    def begin(
        self,
        job: CompactionJob,
        version_provider: Callable[[], Version] | None = None,
    ) -> None:
        """Atomically re-check conflicts and register ``job`` as in flight.

        Raises :class:`StoreError` if the job lost a race to a
        conflicting registration between plan() and here — the caller
        simply drops the stale job and re-plans.

        With ``version_provider``, the *current* version is re-read under
        the table lock and the job is re-validated against it: every
        input run must still be live (an install may have retired runs
        between plan() and dispatch), and ``drop_tombstones`` is
        re-derived from the current shape rather than trusted from plan
        time.  Any job the table admits then keeps its inputs live until
        it finishes — another job removing them would share inputs and be
        refused — so validating here closes the plan/dispatch race.
        """
        names = frozenset(run.name for run in job.inputs)
        with self._inflight_lock:
            if self._conflicts_locked(job, names):
                raise StoreError(
                    f"compaction job {job.kind!r} conflicts with an "
                    "in-flight job"
                )
            if version_provider is not None:
                version = version_provider()
                live = {
                    run.name for run in version.all_runs_newest_first()
                }
                missing = names - live
                if missing:
                    self._count(stale_jobs_rejected=1)
                    raise StoreError(
                        f"compaction job {job.kind!r} inputs retired by a "
                        f"concurrent install: {sorted(missing)}"
                    )
                job.drop_tombstones = self._derive_drop_tombstones(
                    job, version
                )
            entry = _InflightJob(
                kind=job.kind,
                levels=frozenset({job.source_level, job.output_level}),
                names=names,
                range_low=job.range_low,
                range_high=job.range_high,
            )
            if job.kind in self._LEVELED_KINDS and any(
                other.kind in self._LEVELED_KINDS
                and (entry.levels & other.levels)
                for other in self._inflight.values()
            ):
                self._count(leveled_range_admissions=1)
            job.job_id = self._next_job_id
            self._next_job_id += 1
            self._inflight[job.job_id] = entry

    def _count(self, **deltas: int) -> None:
        """Charge compactor counters when a stats sink is wired up."""
        stats = getattr(self._env, "stats", None)
        if stats is not None:
            stats.add(**deltas)

    def _derive_drop_tombstones(
        self, job: CompactionJob, version: Version
    ) -> bool:
        """Whether ``job`` may drop tombstones, judged on ``version``."""
        if job.kind == "full":
            return True
        if job.kind == "tiered-l0":
            return self._tiered_bottom(version, 1)
        if job.kind == "tiered-level":
            return self._tiered_bottom(version, job.output_level)
        return version.max_populated_level() <= job.output_level

    def finish(self, job: CompactionJob) -> None:
        """Drop ``job`` from the conflict table (idempotent)."""
        if job.job_id is None:
            return
        with self._inflight_lock:
            self._inflight.pop(job.job_id, None)

    def inflight_jobs(self) -> int:
        """Number of registered in-flight compaction jobs."""
        with self._inflight_lock:
            return len(self._inflight)

    def forced_l0_job(self, version: Version) -> CompactionJob | None:
        """An L0 merge regardless of the trigger (explicit ``compact()``)."""
        if not version.level0:
            return None
        if self._options.compaction_style == "tiered":
            inputs = version.level_runs(0)
            low, high = _runs_span(inputs)
            return CompactionJob(
                kind="tiered-l0",
                inputs=inputs,
                output_level=1,
                drop_tombstones=self._tiered_bottom(version, 1),
                source_level=0,
                range_low=low,
                range_high=high,
            )
        l0 = version.level_runs(0)
        span_low, span_high = _runs_span(l0)
        inputs = l0 + version.overlap_closure(1, span_low, span_high)
        low, high = _runs_span(inputs)
        return CompactionJob(
            kind="leveled-l0",
            inputs=inputs,
            output_level=1,
            drop_tombstones=version.max_populated_level() <= 1,
            source_level=0,
            range_low=low,
            range_high=high,
        )

    def full_compaction_job(self, version: Version) -> CompactionJob | None:
        """Merge every run into one sorted bottom run, dropping tombstones."""
        inputs = version.all_runs_newest_first()
        if not inputs:
            return None
        return CompactionJob(
            kind="full",
            inputs=inputs,
            output_level=max(1, version.max_populated_level()),
            drop_tombstones=True,
            source_level=0,
        )

    def _tiered_bottom(self, version: Version, target: int) -> bool:
        """Whether a tiered merge into ``target`` may drop tombstones.

        Only when nothing older can resurface: no deeper level holds data
        and the target level has no older groups.
        """
        deeper_data = any(
            version.level_runs(level)
            for level in range(target + 1, self._options.num_levels)
        )
        return not deeper_data and not version.level_runs(target)

    # ------------------------------------------------------------------
    # Execution (no shared version state touched)
    # ------------------------------------------------------------------
    def execute(
        self,
        job: CompactionJob,
        scheduler=None,
        max_subcompactions: int = 1,
    ) -> list[Run]:
        """Merge the job's inputs into fresh output SSTs (the slow part).

        Job-level accounting (``compactions``, bytes read/written, wall
        time) happens once here regardless of how many slices the merge
        was split into.
        """
        stats = self._env.stats
        start_ns = time.perf_counter_ns()
        stats.add(
            compactions=1,
            compaction_bytes_read=sum(run.file_size for run in job.inputs),
        )
        ranges = (
            self.plan_subcompactions(job, max_subcompactions)
            if scheduler is not None and max_subcompactions > 1
            else [(None, None)]
        )
        if len(ranges) <= 1:
            outputs = self._merge_slice(job, None, None)
        else:
            outputs = self._execute_partitioned(job, ranges, scheduler)
            stats.add(subcompactions=len(ranges))
        if job.kind.startswith("tiered"):
            with self._counter_lock:
                group_id = self._next_group_id
                self._next_group_id += 1
            for run in outputs:
                run.group_id = group_id
        stats.add(
            compaction_bytes_written=sum(run.file_size for run in outputs),
            compaction_time_ns=time.perf_counter_ns() - start_ns,
        )
        return outputs

    def plan_subcompactions(
        self, job: CompactionJob, max_slices: int
    ) -> list[tuple[bytes | None, bytes | None]]:
        """Cut the job's key domain into up to ``max_slices`` ranges.

        Boundary candidates are the input runs' fence keys (the last key
        of each data block — RocksDB's subcompaction heuristic), so cuts
        fall on block boundaries and slice sizes track data volume, not
        key-space width.  Returns half-open ``[lo, hi)`` ranges (None =
        unbounded) that partition the whole domain; a job too small to
        cut yields the single unbounded range.
        """
        if max_slices <= 1:
            return [(None, None)]
        candidates = sorted(
            {
                key
                for run in job.inputs
                for key in run.reader.fence_keys()[:-1]
            }
        )
        if not candidates:
            return [(None, None)]
        cut_count = min(max_slices - 1, len(candidates))
        cuts: list[bytes | None] = sorted(
            {
                candidates[(index + 1) * len(candidates) // (cut_count + 1)]
                for index in range(cut_count)
            }
        )
        edges: list[bytes | None] = [None] + cuts + [None]
        return list(zip(edges, edges[1:]))

    def _execute_partitioned(
        self,
        job: CompactionJob,
        ranges: list[tuple[bytes | None, bytes | None]],
        scheduler,
    ) -> list[Run]:
        """Run the slices via the scheduler and stitch outputs in key order.

        Work-stealing: slices sit in a shared queue; the owner thread
        pulls slices in a loop and helper jobs submitted to the scheduler
        pull from the same queue.  A helper that never gets a worker slot
        finds the queue empty and exits — the owner never waits *on the
        helpers*, only on the slice-completion count, so a saturated pool
        cannot deadlock the merge.
        """
        slice_outputs: list[list[Run] | None] = [None] * len(ranges)
        errors: list[BaseException] = []
        done = [0]
        queue_lock = threading.Lock()
        next_slice = [0]

        def pull() -> None:
            while True:
                with queue_lock:
                    index = next_slice[0]
                    if index >= len(ranges) or errors:
                        return
                    next_slice[0] = index + 1
                low, high = ranges[index]
                try:
                    result = self._merge_slice(job, low, high)
                    with queue_lock:
                        slice_outputs[index] = result
                finally:
                    # Count the slice even on error so the owner's wait
                    # terminates; the error itself re-raises below.
                    with queue_lock:
                        done[0] += 1

        def helper() -> None:
            try:
                pull()
            except PowerCutError:
                raise
            except BaseException as exc:  # noqa: BLE001 — reported to owner
                with queue_lock:
                    errors.append(exc)
                raise

        workers = getattr(scheduler, "workers", None)
        helper_budget = len(ranges) - 1
        if workers is not None:
            helper_budget = min(helper_budget, max(0, workers - 1))
        for _ in range(helper_budget):
            scheduler.submit("subcompaction", helper)
        try:
            pull()  # the owner works the queue too
        except PowerCutError:
            raise
        except BaseException as exc:  # noqa: BLE001 — raised after the wait
            with queue_lock:
                errors.append(exc)
        # Wait on *claimed* slices only: a helper still queued behind a
        # saturated pool never claims one, so waiting on len(ranges)
        # could wait on work nobody will do.  On the success path the
        # owner's loop has claimed everything before reaching here.
        if not scheduler.wait_for(lambda: done[0] >= next_slice[0], timeout_s=None):
            raise StoreError("subcompaction wait exhausted its yield bound")
        if errors:
            raise errors[0]
        stitched: list[Run] = []
        for outputs in slice_outputs:
            stitched.extend(outputs or [])
        return stitched

    def _merge_slice(
        self, job: CompactionJob, low: bytes | None, high: bytes | None
    ) -> list[Run]:
        """Merge the job's inputs restricted to keys in ``[low, high)``."""
        sources = [
            (priority, run.reader.iterate_from(low or b""))
            for priority, run in enumerate(job.inputs)
        ]
        merged = MergingIterator(sources)
        outputs: list[Run] = []
        writer: SSTWriter | None = None
        factory = self._filter_factory_provider()
        bits_override = self._rebuild_bits_override(job, factory)
        for key, tag, value in merged:
            if low is not None and key < low:
                continue
            if high is not None and key >= high:
                break
            if job.drop_tombstones and tag == ValueTag.DELETE:
                continue
            if writer is None:
                writer = self._new_writer(
                    job.output_level, factory, bits_override
                )
            writer.add(key, tag, value)
            if writer.estimated_file_size >= self._options.sst_size_bytes:
                outputs.append(self._finish_writer(writer, job.output_level))
                writer = None
        if writer is not None and writer.num_entries:
            outputs.append(self._finish_writer(writer, job.output_level))
        return outputs

    # ------------------------------------------------------------------
    # Installation (caller holds the DB mutex, version is a clone)
    # ------------------------------------------------------------------
    def apply(
        self, version: Version, job: CompactionJob, outputs: list[Run]
    ) -> None:
        """Swap the job's inputs for ``outputs`` in ``version``.

        Removal is by file name (not "clear the level") so a job planned
        against an older snapshot cannot swallow runs it never merged,
        and leveled installs union-merge with the level's surviving runs
        (via :meth:`Version.merge_into_level`) so runs another job
        published at the output level between plan and install survive.
        """
        input_names = {run.name for run in job.inputs}
        if job.kind in ("leveled-l0", "tiered-l0", "full"):
            version.level0 = [
                run for run in version.level0 if run.name not in input_names
            ]
        if job.kind == "full":
            for level in list(version.levels):
                version.levels[level] = [
                    run
                    for run in version.levels[level]
                    if run.name not in input_names
                ]
            version.merge_into_level(job.output_level, outputs, input_names)
            return
        if job.kind == "leveled-l0":
            version.merge_into_level(1, outputs, input_names)
        elif job.kind == "leveled-level":
            version.levels[job.source_level] = [
                run
                for run in version.level_runs(job.source_level)
                if run.name not in input_names
            ]
            version.merge_into_level(job.output_level, outputs, input_names)
        elif job.kind == "tiered-l0":
            version.prepend_group(1, outputs)
        elif job.kind == "tiered-level":
            version.levels[job.source_level] = [
                run
                for run in version.level_runs(job.source_level)
                if run.name not in input_names
            ]
            version.prepend_group(job.output_level, outputs)
        else:
            raise StoreError(f"unknown compaction job kind {job.kind!r}")

    # ------------------------------------------------------------------
    # Machinery
    # ------------------------------------------------------------------
    def _rebuild_bits_override(
        self, job: CompactionJob, factory: FilterFactory | None
    ) -> float | None:
        """Bits-per-key override for this job's output filters, or None.

        When a job rebuilds a run flagged as under attack, the auto-tuner
        grants the replacement filter its attack bits bonus on top of the
        recipe's budget — re-salting breaks the attacker's learned FP set
        and the extra bits lower the FPR ceiling of the next learning
        round.
        """
        if factory is None or factory.bits_per_key is None:
            return None
        tuner = self._tuner_provider()
        if tuner is None:
            return None
        attacked = self._attacked_runs()
        if not attacked or not any(
            run.name in attacked for run in job.inputs
        ):
            return None
        return tuner.rebuild_bits_per_key(factory.bits_per_key, True)

    def _new_writer(
        self,
        output_level: int,
        factory: FilterFactory | None,
        filter_bits_per_key: float | None = None,
    ) -> SSTWriter:
        return SSTWriter(
            self._env,
            self.next_file_name(output_level),
            self._options,
            filter_factory=factory,
            filter_bits_per_key=filter_bits_per_key,
        )

    def _finish_writer(self, writer: SSTWriter, output_level: int) -> Run:
        meta = writer.finish()
        reader = SSTReader(
            self._env, meta, self._options, self._cache, is_level0=False
        )
        return Run(reader=reader, level=output_level)

    def destroy_runs(self, runs: Iterable[Run]) -> None:
        """Delete input files; purge their cache and filter-dictionary state."""
        for run in runs:
            self._cache.remove_file(run.name)
            self._filter_dictionary.drop_run(run.name)
            self._env.delete_file(run.name)

    def next_file_name(self, level: int) -> str:
        """Allocate a fresh SST file name (used by flush and compaction)."""
        with self._counter_lock:
            number = self._next_file_number
            self._next_file_number += 1
        return f"sst_{level}_{number:08d}.sst"
