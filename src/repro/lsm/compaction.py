"""Leveled compaction — merge runs downward, rebuilding filters.

Policy (RocksDB leveled, simplified to whole-level granularity):

* L0 reaching ``level0_file_num_compaction_trigger`` files merges all of L0
  with all of L1 into fresh L1 files of at most ``sst_size_bytes``.
* A level exceeding its size target (``max_bytes_for_level_base * ratio^i``)
  merges wholesale into the next level.
* Tombstones survive until the output is the bottom-most populated level,
  where they are dropped.

"During background compactions, a new filter instance is built for the
merged content of the new SST, while the filter instances for the old SSTs
are destroyed" (§4) — old files are deleted, their block-cache entries and
filter-dictionary entries dropped, and the new SSTs get fresh filters built
by the configured factory (charged to the Fig. 6 construction counters).
"""

from __future__ import annotations

import time
from typing import Callable, Iterable

from repro.filters.base import FilterFactory
from repro.lsm.block_cache import BlockCache
from repro.lsm.env import StorageEnv
from repro.lsm.filter_integration import FilterDictionary
from repro.lsm.format import ValueTag
from repro.lsm.iterators import MergingIterator
from repro.lsm.options import DBOptions
from repro.lsm.sstable import SSTReader, SSTWriter
from repro.lsm.version import Run, Version

__all__ = ["Compactor"]


class Compactor:
    """Runs flush-triggered and size-triggered compactions for one DB."""

    def __init__(
        self,
        env: StorageEnv,
        options: DBOptions,
        cache: BlockCache,
        filter_dictionary: FilterDictionary,
        filter_factory_provider: Callable[[], FilterFactory | None] | None = None,
        on_version_change: Callable[[], None] | None = None,
    ) -> None:
        self._env = env
        self._options = options
        self._cache = cache
        self._filter_dictionary = filter_dictionary
        self._next_file_number = 1
        self._next_group_id = 1
        # The auto-tuner can swap the factory between compactions (§2.4);
        # resolve it lazily at each compaction.
        self._filter_factory_provider = filter_factory_provider or (
            lambda: options.filter_factory
        )
        # Crash-safe GC ordering: the owner persists the manifest here
        # *after* outputs are installed and *before* inputs are deleted, so
        # a crash in between leaves a manifest whose files all still exist
        # (orphaned outputs or inputs are cleaned up on the next recovery).
        self._on_version_change = on_version_change or (lambda: None)

    def advance_file_number(self, past: int) -> None:
        """Never emit a file number <= ``past`` (recovery collision guard)."""
        self._next_file_number = max(self._next_file_number, past + 1)

    def advance_group_id(self, past: int) -> None:
        """Never emit a group id <= ``past`` (recovery collision guard)."""
        self._next_group_id = max(self._next_group_id, past + 1)

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def maybe_compact(self, version: Version) -> int:
        """Run compactions until the tree satisfies every invariant.

        Returns the number of compactions performed.
        """
        if self._options.compaction_style == "tiered":
            return self._maybe_compact_tiered(version)
        performed = 0
        while True:
            if (
                len(version.level0)
                >= self._options.level0_file_num_compaction_trigger
            ):
                self._compact_level0(version)
                performed += 1
                continue
            oversize = self._first_oversize_level(version)
            if oversize is not None:
                self._compact_level(version, oversize)
                performed += 1
                continue
            return performed

    def _maybe_compact_tiered(self, version: Version) -> int:
        """Tiered policy: merge a level's runs down once it holds T of them.

        L0 keeps its file-count trigger (each L0 file is one run); levels
        1+ accumulate up to ``level_size_ratio`` sorted groups before the
        whole level merges into one new group at the next level.  Runs are
        never merged with the target level's existing groups — the write
        savings that define tiering.
        """
        performed = 0
        ratio = self._options.level_size_ratio
        while True:
            if (
                len(version.level0)
                >= self._options.level0_file_num_compaction_trigger
            ):
                inputs = version.level_runs(0)
                self._tiered_merge(version, inputs, target=1)
                version.clear_level0()
                self._on_version_change()
                self._destroy_runs(inputs)
                performed += 1
                continue
            overfull = next(
                (
                    level
                    for level in range(1, self._options.num_levels - 1)
                    if version.num_groups(level) >= ratio
                ),
                None,
            )
            if overfull is not None:
                inputs = version.level_runs(overfull)
                self._tiered_merge(version, inputs, target=overfull + 1)
                version.levels[overfull] = []
                self._on_version_change()
                self._destroy_runs(inputs)
                performed += 1
                continue
            return performed

    def _tiered_merge(
        self, version: Version, inputs: list[Run], target: int
    ) -> None:
        """Merge ``inputs`` into one fresh group prepended at ``target``."""
        # Tombstones may drop only when nothing older can resurface: no
        # deeper level holds data and the target level has no older groups.
        deeper_data = any(
            version.level_runs(level)
            for level in range(target + 1, self._options.num_levels)
        )
        bottom = not deeper_data and not version.level_runs(target)
        outputs = self._merge_and_write(
            inputs, output_level=target, drop_tombstones=bottom
        )
        group_id = self._next_group_id
        self._next_group_id += 1
        for run in outputs:
            run.group_id = group_id
        version.prepend_group(target, outputs)

    def _first_oversize_level(self, version: Version) -> int | None:
        for level in range(1, self._options.num_levels - 1):
            target = self._options.level_target_bytes(level)
            if version.level_size_bytes(level) > target:
                return level
        return None

    # ------------------------------------------------------------------
    # Compaction bodies
    # ------------------------------------------------------------------
    def _compact_level0(self, version: Version) -> None:
        inputs = version.level_runs(0) + version.level_runs(1)
        if not inputs:
            return
        bottom = version.max_populated_level() <= 1
        outputs = self._merge_and_write(inputs, output_level=1, drop_tombstones=bottom)
        version.clear_level0()
        version.install_level(1, outputs)
        self._on_version_change()
        self._destroy_runs(inputs)

    def _compact_level(self, version: Version, level: int) -> None:
        inputs = version.level_runs(level) + version.level_runs(level + 1)
        if not inputs:
            return
        bottom = version.max_populated_level() <= level + 1
        outputs = self._merge_and_write(
            inputs, output_level=level + 1, drop_tombstones=bottom
        )
        version.install_level(level, [])
        version.install_level(level + 1, outputs)
        self._on_version_change()
        self._destroy_runs(inputs)

    # ------------------------------------------------------------------
    # Machinery
    # ------------------------------------------------------------------
    def _merge_and_write(
        self, inputs: list[Run], output_level: int, drop_tombstones: bool
    ) -> list[Run]:
        """Merge input runs (newest wins) into size-capped output SSTs."""
        stats = self._env.stats
        start_ns = time.perf_counter_ns()
        stats.compactions += 1
        stats.compaction_bytes_read += sum(run.file_size for run in inputs)

        sources = [
            (priority, run.reader.iterate_from(b""))
            for priority, run in enumerate(inputs)
        ]
        merged = MergingIterator(sources)
        outputs: list[Run] = []
        writer: SSTWriter | None = None
        factory = self._filter_factory_provider()
        for key, tag, value in merged:
            if drop_tombstones and tag == ValueTag.DELETE:
                continue
            if writer is None:
                writer = self._new_writer(output_level, factory)
            writer.add(key, tag, value)
            if writer.estimated_file_size >= self._options.sst_size_bytes:
                outputs.append(self._finish_writer(writer, output_level))
                writer = None
        if writer is not None and writer.num_entries:
            outputs.append(self._finish_writer(writer, output_level))

        stats.compaction_bytes_written += sum(run.file_size for run in outputs)
        stats.compaction_time_ns += time.perf_counter_ns() - start_ns
        return outputs

    def _new_writer(
        self, output_level: int, factory: FilterFactory | None
    ) -> SSTWriter:
        return SSTWriter(
            self._env,
            self.next_file_name(output_level),
            self._options,
            filter_factory=factory,
        )

    def _finish_writer(self, writer: SSTWriter, output_level: int) -> Run:
        meta = writer.finish()
        reader = SSTReader(
            self._env, meta, self._options, self._cache, is_level0=False
        )
        return Run(reader=reader, level=output_level)

    def _destroy_runs(self, runs: Iterable[Run]) -> None:
        """Delete input files; purge their cache and filter-dictionary state."""
        for run in runs:
            self._cache.remove_file(run.name)
            self._filter_dictionary.drop_run(run.name)
            self._env.delete_file(run.name)

    def next_file_name(self, level: int) -> str:
        """Allocate a fresh SST file name (used by flush and compaction)."""
        number = self._next_file_number
        self._next_file_number += 1
        return f"sst_{level}_{number:08d}.sst"
