"""Leveled/tiered compaction — merge runs downward, rebuilding filters.

Policy (RocksDB leveled, simplified to whole-level granularity):

* L0 reaching ``level0_file_num_compaction_trigger`` files merges all of L0
  with all of L1 into fresh L1 files of at most ``sst_size_bytes``.
* A level exceeding its size target (``max_bytes_for_level_base * ratio^i``)
  merges wholesale into the next level.
* Tombstones survive until the output is the bottom-most populated level,
  where they are dropped.

"During background compactions, a new filter instance is built for the
merged content of the new SST, while the filter instances for the old SSTs
are destroyed" (§4) — old files are deleted, their block-cache entries and
filter-dictionary entries dropped, and the new SSTs get fresh filters built
by the configured factory (charged to the Fig. 6 construction counters).

Job API
-------
Compaction is split into three phases so the DB's maintenance scheduler
can interleave it safely with foreground work:

``plan(version) -> CompactionJob | None``
    Pure read of the tree shape: picks the next trigger-satisfying merge
    (or None when the tree is in shape).  ``forced_l0_job`` and
    ``full_compaction_job`` build the explicit-``compact()`` /
    ``force_full_compaction()`` variants regardless of triggers.
``execute(job) -> list[Run]``
    The expensive part — merge the input runs into fresh output SSTs.
    Touches no shared version state, so it runs unlocked on a worker.
``apply(version, job, outputs)``
    Pure metadata edit: swap inputs for outputs on a ``Version`` *clone*
    under the DB mutex.  The caller persists the manifest and installs
    the clone atomically; input files are destroyed afterwards (and only
    once no reader still holds a superversion referencing them) via
    :meth:`destroy_runs`.

Name/group counters are lock-protected because flush jobs and compaction
jobs allocate file names concurrently.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Iterable

from repro.errors import StoreError
from repro.filters.base import FilterFactory
from repro.lsm.block_cache import BlockCache
from repro.lsm.env import StorageEnv
from repro.lsm.filter_integration import FilterDictionary
from repro.lsm.format import ValueTag
from repro.lsm.iterators import MergingIterator
from repro.lsm.options import DBOptions
from repro.lsm.sstable import SSTReader, SSTWriter
from repro.lsm.version import Run, Version

__all__ = ["Compactor", "CompactionJob"]


@dataclass
class CompactionJob:
    """One planned merge: what goes in, where the output lands.

    ``kind`` is one of ``leveled-l0`` (L0+L1 -> L1), ``leveled-level``
    (Ln+Ln+1 -> Ln+1), ``tiered-l0`` / ``tiered-level`` (whole level ->
    one fresh group prepended at the target), or ``full`` (everything ->
    the bottom level).  ``inputs`` are recency-ordered, which is what
    makes the merging iterator's newest-wins shadowing correct.
    """

    kind: str
    inputs: list[Run]
    output_level: int
    drop_tombstones: bool
    source_level: int = 0


class Compactor:
    """Plans and runs flush-triggered and size-triggered compactions."""

    def __init__(
        self,
        env: StorageEnv,
        options: DBOptions,
        cache: BlockCache,
        filter_dictionary: FilterDictionary,
        filter_factory_provider: Callable[[], FilterFactory | None] | None = None,
    ) -> None:
        self._env = env
        self._options = options
        self._cache = cache
        self._filter_dictionary = filter_dictionary
        # Guards the name/group counters: flush (on one worker) and
        # compaction (possibly on another, or a forced foreground job)
        # both allocate file names.
        self._counter_lock = threading.Lock()
        self._next_file_number = 1
        self._next_group_id = 1
        # The auto-tuner can swap the factory between compactions (§2.4);
        # resolve it lazily at each compaction.
        self._filter_factory_provider = filter_factory_provider or (
            lambda: options.filter_factory
        )

    def advance_file_number(self, past: int) -> None:
        """Never emit a file number <= ``past`` (recovery collision guard)."""
        with self._counter_lock:
            self._next_file_number = max(self._next_file_number, past + 1)

    def advance_group_id(self, past: int) -> None:
        """Never emit a group id <= ``past`` (recovery collision guard)."""
        with self._counter_lock:
            self._next_group_id = max(self._next_group_id, past + 1)

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    def plan(self, version: Version) -> CompactionJob | None:
        """Next trigger-satisfying compaction, or None when in shape."""
        if self._options.compaction_style == "tiered":
            return self._plan_tiered(version)
        if (
            len(version.level0)
            >= self._options.level0_file_num_compaction_trigger
        ):
            return self.forced_l0_job(version)
        oversize = self._first_oversize_level(version)
        if oversize is not None:
            inputs = version.level_runs(oversize) + version.level_runs(oversize + 1)
            return CompactionJob(
                kind="leveled-level",
                inputs=inputs,
                output_level=oversize + 1,
                drop_tombstones=version.max_populated_level() <= oversize + 1,
                source_level=oversize,
            )
        return None

    def _plan_tiered(self, version: Version) -> CompactionJob | None:
        ratio = self._options.level_size_ratio
        if (
            len(version.level0)
            >= self._options.level0_file_num_compaction_trigger
        ):
            return self.forced_l0_job(version)
        overfull = next(
            (
                level
                for level in range(1, self._options.num_levels - 1)
                if version.num_groups(level) >= ratio
            ),
            None,
        )
        if overfull is None:
            return None
        return CompactionJob(
            kind="tiered-level",
            inputs=version.level_runs(overfull),
            output_level=overfull + 1,
            drop_tombstones=self._tiered_bottom(version, overfull + 1),
            source_level=overfull,
        )

    def forced_l0_job(self, version: Version) -> CompactionJob | None:
        """An L0 merge regardless of the trigger (explicit ``compact()``)."""
        if not version.level0:
            return None
        if self._options.compaction_style == "tiered":
            return CompactionJob(
                kind="tiered-l0",
                inputs=version.level_runs(0),
                output_level=1,
                drop_tombstones=self._tiered_bottom(version, 1),
                source_level=0,
            )
        inputs = version.level_runs(0) + version.level_runs(1)
        return CompactionJob(
            kind="leveled-l0",
            inputs=inputs,
            output_level=1,
            drop_tombstones=version.max_populated_level() <= 1,
            source_level=0,
        )

    def full_compaction_job(self, version: Version) -> CompactionJob | None:
        """Merge every run into one sorted bottom run, dropping tombstones."""
        inputs = version.all_runs_newest_first()
        if not inputs:
            return None
        return CompactionJob(
            kind="full",
            inputs=inputs,
            output_level=max(1, version.max_populated_level()),
            drop_tombstones=True,
            source_level=0,
        )

    def _tiered_bottom(self, version: Version, target: int) -> bool:
        """Whether a tiered merge into ``target`` may drop tombstones.

        Only when nothing older can resurface: no deeper level holds data
        and the target level has no older groups.
        """
        deeper_data = any(
            version.level_runs(level)
            for level in range(target + 1, self._options.num_levels)
        )
        return not deeper_data and not version.level_runs(target)

    def _first_oversize_level(self, version: Version) -> int | None:
        for level in range(1, self._options.num_levels - 1):
            target = self._options.level_target_bytes(level)
            if version.level_size_bytes(level) > target:
                return level
        return None

    # ------------------------------------------------------------------
    # Execution (no shared version state touched)
    # ------------------------------------------------------------------
    def execute(self, job: CompactionJob) -> list[Run]:
        """Merge the job's inputs into fresh output SSTs (the slow part)."""
        outputs = self.merge_runs(
            job.inputs, job.output_level, job.drop_tombstones
        )
        if job.kind.startswith("tiered"):
            with self._counter_lock:
                group_id = self._next_group_id
                self._next_group_id += 1
            for run in outputs:
                run.group_id = group_id
        return outputs

    # ------------------------------------------------------------------
    # Installation (caller holds the DB mutex, version is a clone)
    # ------------------------------------------------------------------
    def apply(
        self, version: Version, job: CompactionJob, outputs: list[Run]
    ) -> None:
        """Swap the job's inputs for ``outputs`` in ``version``.

        Removal is by file name (not "clear the level") so a job planned
        against an older snapshot cannot swallow runs it never merged.
        """
        input_names = {run.name for run in job.inputs}
        if job.kind in ("leveled-l0", "tiered-l0", "full"):
            version.level0 = [
                run for run in version.level0 if run.name not in input_names
            ]
        if job.kind == "full":
            for level in list(version.levels):
                version.levels[level] = [
                    run
                    for run in version.levels[level]
                    if run.name not in input_names
                ]
            version.install_level(job.output_level, outputs)
            return
        if job.kind == "leveled-l0":
            version.install_level(1, outputs)
        elif job.kind == "leveled-level":
            version.levels[job.source_level] = [
                run
                for run in version.level_runs(job.source_level)
                if run.name not in input_names
            ]
            version.install_level(job.output_level, outputs)
        elif job.kind == "tiered-l0":
            version.prepend_group(1, outputs)
        elif job.kind == "tiered-level":
            version.levels[job.source_level] = [
                run
                for run in version.level_runs(job.source_level)
                if run.name not in input_names
            ]
            version.prepend_group(job.output_level, outputs)
        else:
            raise StoreError(f"unknown compaction job kind {job.kind!r}")

    # ------------------------------------------------------------------
    # Machinery
    # ------------------------------------------------------------------
    def merge_runs(
        self, inputs: list[Run], output_level: int, drop_tombstones: bool
    ) -> list[Run]:
        """Merge input runs (newest wins) into size-capped output SSTs."""
        stats = self._env.stats
        start_ns = time.perf_counter_ns()
        stats.add(
            compactions=1,
            compaction_bytes_read=sum(run.file_size for run in inputs),
        )

        sources = [
            (priority, run.reader.iterate_from(b""))
            for priority, run in enumerate(inputs)
        ]
        merged = MergingIterator(sources)
        outputs: list[Run] = []
        writer: SSTWriter | None = None
        factory = self._filter_factory_provider()
        for key, tag, value in merged:
            if drop_tombstones and tag == ValueTag.DELETE:
                continue
            if writer is None:
                writer = self._new_writer(output_level, factory)
            writer.add(key, tag, value)
            if writer.estimated_file_size >= self._options.sst_size_bytes:
                outputs.append(self._finish_writer(writer, output_level))
                writer = None
        if writer is not None and writer.num_entries:
            outputs.append(self._finish_writer(writer, output_level))

        stats.add(
            compaction_bytes_written=sum(run.file_size for run in outputs),
            compaction_time_ns=time.perf_counter_ns() - start_ns,
        )
        return outputs

    def _new_writer(
        self, output_level: int, factory: FilterFactory | None
    ) -> SSTWriter:
        return SSTWriter(
            self._env,
            self.next_file_name(output_level),
            self._options,
            filter_factory=factory,
        )

    def _finish_writer(self, writer: SSTWriter, output_level: int) -> Run:
        meta = writer.finish()
        reader = SSTReader(
            self._env, meta, self._options, self._cache, is_level0=False
        )
        return Run(reader=reader, level=output_level)

    def destroy_runs(self, runs: Iterable[Run]) -> None:
        """Delete input files; purge their cache and filter-dictionary state."""
        for run in runs:
            self._cache.remove_file(run.name)
            self._filter_dictionary.drop_run(run.name)
            self._env.delete_file(run.name)

    def next_file_name(self, level: int) -> str:
        """Allocate a fresh SST file name (used by flush and compaction)."""
        with self._counter_lock:
            number = self._next_file_number
            self._next_file_number += 1
        return f"sst_{level}_{number:08d}.sst"
