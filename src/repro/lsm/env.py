"""Storage environment: real files plus a device latency model.

The paper evaluates across the memory hierarchy — main memory, SATA SSD,
and 7200-RPM HDD (Fig. 9) — on physical hardware we do not have.  The
substitution: SST bytes live in real local files (so serialization, block
layout, and read paths are genuinely exercised), while *device time* is
charged analytically per block read from a :class:`DeviceModel`:

* ``memory`` — DRAM-resident store: ~100 ns per block, no seek;
* ``ssd`` — tens of microseconds per random block read;
* ``hdd`` — a ~10 ms seek dominating every random read.

Charged time accumulates in ``PerfStats.block_read_time_ns`` — the analog of
RocksDB's ``block_read_time`` — so end-to-end "latency" is measured CPU plus
modeled device time.  Only the device constants are synthetic; which blocks
are read, and how many, is decided by the real code paths.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass
from typing import BinaryIO, Callable, Optional

from repro.errors import TransientIOError
from repro.lsm.stats import PerfStats

__all__ = ["DeviceModel", "StorageEnv", "DEVICE_PRESETS"]


@dataclass(frozen=True)
class DeviceModel:
    """Per-operation latency constants for one storage device."""

    name: str
    read_seek_ns: int      # fixed cost per random block read
    read_per_byte_ns: float  # transfer cost
    write_per_byte_ns: float

    def block_read_ns(self, num_bytes: int) -> int:
        """Modeled latency of one random block read of ``num_bytes``."""
        return self.read_seek_ns + int(self.read_per_byte_ns * num_bytes)

    def write_ns(self, num_bytes: int) -> int:
        """Modeled latency of appending ``num_bytes`` (sequential)."""
        return int(self.write_per_byte_ns * num_bytes)


def _scaled(model: DeviceModel, factor: float) -> DeviceModel:
    return DeviceModel(
        name=f"{model.name}-scaled",
        read_seek_ns=int(model.read_seek_ns * factor),
        read_per_byte_ns=model.read_per_byte_ns * factor,
        write_per_byte_ns=model.write_per_byte_ns * factor,
    )


#: Real-hardware constants (§5, Fig. 9): DRAM, a SATA consumer SSD (~80 us
#: random read), and a 7200-RPM SATA HDD (~10 ms seek).
_RAW_PRESETS = {
    "memory": DeviceModel("memory", read_seek_ns=100, read_per_byte_ns=0.01,
                          write_per_byte_ns=0.01),
    "ssd": DeviceModel("ssd", read_seek_ns=80_000, read_per_byte_ns=0.4,
                       write_per_byte_ns=0.4),
    "hdd": DeviceModel("hdd", read_seek_ns=10_000_000, read_per_byte_ns=5.0,
                       write_per_byte_ns=5.0),
}

#: Pure-Python CPU runs roughly two to three orders of magnitude slower than
#: the paper's C++ filter code, so charging *real* device constants against
#: *Python* CPU time would invert the CPU:I/O ratio the paper's design
#: argument rests on.  The ``*-scaled`` presets multiply device latency by
#: this factor so the ratio of (filter probe cost : block read cost) on this
#: substrate matches the paper's testbed.  End-to-end experiments use the
#: scaled presets; Fig. 9's cross-device comparison uses both.
PYTHON_CPU_INFLATION = 200

DEVICE_PRESETS: dict[str, DeviceModel] = {
    **_RAW_PRESETS,
    "memory-scaled": _scaled(_RAW_PRESETS["memory"], PYTHON_CPU_INFLATION),
    "ssd-scaled": _scaled(_RAW_PRESETS["ssd"], PYTHON_CPU_INFLATION),
    "hdd-scaled": _scaled(_RAW_PRESETS["hdd"], PYTHON_CPU_INFLATION),
}


class StorageEnv:
    """File I/O gateway charging modeled device time into :class:`PerfStats`.

    Parameters
    ----------
    root:
        Directory that will hold the store's files (created if missing).
    device:
        Device name from :data:`DEVICE_PRESETS` or a custom model.
    stats:
        Counter sink; one per DB.
    """

    def __init__(
        self,
        root: str,
        device: str | DeviceModel = "memory",
        stats: PerfStats | None = None,
    ) -> None:
        if isinstance(device, str):
            try:
                device = DEVICE_PRESETS[device]
            except KeyError:
                raise ValueError(
                    f"unknown device {device!r}; expected one of "
                    f"{sorted(DEVICE_PRESETS)}"
                ) from None
        self.device = device
        self.root = root
        self.stats = stats if stats is not None else PerfStats()
        #: Bounded retry policy for *transient* read errors: how many extra
        #: attempts one block read gets, and the (modeled, exponential)
        #: backoff charged per retry.  The DB wires these from
        #: ``DBOptions.io_retry_attempts`` / ``io_retry_backoff_ns``; a bare
        #: env retries nothing.
        self.retry_attempts = 0
        self.retry_backoff_ns = 0
        #: Scheduler hook fired at the top of every durable operation
        #: (write/append/sync/delete).  The DB points this at
        #: ``scheduler.sync_point`` when a concurrent scheduler is active,
        #: which is what lets the deterministic torture scheduler
        #: interleave foreground and background work at exactly the
        #: boundaries where crashes can occur.  Reads do not yield.
        self.yield_hook: Optional[Callable[[str], None]] = None
        os.makedirs(root, exist_ok=True)
        self._handles: dict[str, BinaryIO] = {}
        # Serializes shared read-handle use (seek+read is not atomic) and
        # handle-cache mutation across foreground and worker threads.
        self._handle_lock = threading.Lock()

    def _yield(self, tag: str) -> None:
        hook = self.yield_hook
        if hook is not None:
            hook(tag)

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    def path(self, name: str) -> str:
        """Absolute path of a store-relative file name."""
        return os.path.join(self.root, name)

    def exists(self, name: str) -> bool:
        """Whether the file exists."""
        return os.path.exists(self.path(name))

    def file_size(self, name: str) -> int:
        """Size of the file in bytes."""
        return os.path.getsize(self.path(name))

    def list_files(self) -> list[str]:
        """Store-relative names of all files, sorted."""
        return sorted(os.listdir(self.root))

    # ------------------------------------------------------------------
    # I/O
    # ------------------------------------------------------------------
    def write_file(self, name: str, payload: bytes, sync: bool = True) -> None:
        """Write a whole immutable file (SSTs are written once).

        ``sync=True`` marks the file durable at completion — the boundary a
        fault-injecting env uses to decide what a power cut may destroy.
        """
        self._yield(f"write_file:{name}")
        with open(self.path(name), "wb") as handle:
            handle.write(payload)
        self.stats.add(bytes_written=len(payload))

    def write_file_atomic(
        self, name: str, payload: bytes, fsync: bool = False
    ) -> None:
        """All-or-nothing file replacement (manifest writes).

        Writes ``name + ".tmp"``, flushes (optionally fsyncs), then
        ``os.replace``s it over the target, so a crash at any point leaves
        either the old file or the new one — never a torn mixture.
        """
        self._yield(f"write_file_atomic:{name}")
        tmp = self.path(name + ".tmp")
        with open(tmp, "wb") as handle:
            handle.write(payload)
            handle.flush()
            if fsync:
                os.fsync(handle.fileno())
        os.replace(tmp, self.path(name))
        self.stats.add(bytes_written=len(payload))

    def append_file(self, name: str, payload: bytes) -> None:
        """Append to a log file (WAL); durable only after :meth:`sync_file`."""
        self._yield(f"append_file:{name}")
        with open(self.path(name), "ab") as handle:
            handle.write(payload)
        self.stats.add(bytes_written=len(payload))

    def sync_file(self, name: str) -> None:
        """Durability barrier: appended bytes survive a power cut after this.

        The base env leaves durability to the OS (benchmarks don't fsync);
        the hook exists so :class:`~repro.lsm.faults.FaultInjectionEnv` can
        track exactly which suffix of a log a crash is allowed to destroy.
        """
        self._yield(f"sync_file:{name}")

    def read_block(self, name: str, offset: int, size: int) -> bytes:
        """Random block read, charged at device latency.

        Transient failures (:class:`~repro.errors.TransientIOError`) are
        retried up to ``retry_attempts`` times with modeled exponential
        backoff; permanent errors propagate immediately.
        """
        return self._retry_read(lambda: self._read_block_once(name, offset, size))

    def _read_block_once(self, name: str, offset: int, size: int) -> bytes:
        """One unretried block read (the fault-injection override point).

        Handles are opened unbuffered: the block cache is the only caching
        layer, so every miss genuinely touches the file — which keeps the
        charged device time honest and makes on-disk corruption visible
        immediately.
        """
        with self._handle_lock:
            handle = self._handles.get(name)
            if handle is None:
                handle = open(self.path(name), "rb", buffering=0)
                self._handles[name] = handle
            handle.seek(offset)
            payload = handle.read(size)
        self.stats.add(
            block_reads=1,
            block_read_bytes=len(payload),
            block_read_time_ns=self.device.block_read_ns(len(payload)),
        )
        return payload

    def read_file(self, name: str) -> bytes:
        """Read a whole file (recovery paths), charged as one big read."""
        return self._retry_read(lambda: self._read_file_once(name))

    def _read_file_once(self, name: str) -> bytes:
        with open(self.path(name), "rb") as handle:
            payload = handle.read()
        self.stats.add(
            block_reads=1,
            block_read_bytes=len(payload),
            block_read_time_ns=self.device.block_read_ns(len(payload)),
        )
        return payload

    def _retry_read(self, op: Callable[[], bytes]) -> bytes:
        attempt = 0
        while True:
            try:
                return op()
            except TransientIOError:
                self.stats.add(io_transient_errors=1)
                if attempt >= self.retry_attempts:
                    raise
                # Modeled backoff (no real sleep): doubles per attempt and
                # lands in the same bucket as device latency.
                self.stats.add(
                    io_retries=1,
                    block_read_time_ns=self.retry_backoff_ns << attempt,
                )
                attempt += 1

    def delete_file(self, name: str) -> None:
        """Remove a file (post-compaction cleanup)."""
        self._yield(f"delete_file:{name}")
        with self._handle_lock:
            handle = self._handles.pop(name, None)
        if handle is not None:
            handle.close()
        if self.exists(name):
            os.remove(self.path(name))

    def close(self) -> None:
        """Close all cached read handles."""
        with self._handle_lock:
            handles = list(self._handles.values())
            self._handles.clear()
        for handle in handles:
            handle.close()
