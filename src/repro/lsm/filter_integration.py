"""Per-run filter management — the §4 integration machinery.

Three pieces:

* :class:`FilterDictionary` — "we construct a dictionary containing the
  mapping of the deserialized bits of each Rosetta instance and its
  corresponding run", preventing a deserialization per query.  Entries are
  dropped when a compaction destroys the run.  Disabling it (an ablation in
  ``benchmarks/``) re-deserializes the filter block on every query, which
  is what the paper's deserialization-cost discussion is about.
* :func:`batched_tightened_ranges` — the bulk *range* probe: every
  overlapping run's Rosetta doubts the same range in one multi-stack
  frontier sweep, returning a §2.2.1-tightened seek window per run.
* :func:`batched_point_verdicts` — the bulk *point* probe: one
  ``may_contain_batch`` call per run for that run's whole ``multi_get``
  key group.
"""

from __future__ import annotations

import threading
from typing import Sequence

from repro.core import doubting
from repro.core.tuning import observed_fpr
from repro.errors import SerializationError
from repro.filters.base import KeyFilter, deserialize_filter
from repro.filters.rosetta_adapter import RosettaFilter
from repro.lsm.sstable import SSTReader
from repro.lsm.stats import PerfStats, Stopwatch

__all__ = [
    "FilterDictionary",
    "batched_point_verdicts",
    "batched_tightened_ranges",
]


class FilterDictionary:
    """Cache of deserialized filter instances, keyed by SST file name.

    With ``degrade_corrupt=True`` a filter envelope that fails to decode
    (bad CRC, bad magic, truncated bytes) marks that run *filter-less*
    instead of failing the query: the probe returns positive, the query
    falls through to the data read — whose own per-block CRCs still guard
    against silently wrong answers — and ``PerfStats.filters_degraded``
    counts the run once.  Degradation is sticky for the run's lifetime;
    compacting the run away rebuilds a fresh filter and clears the mark.
    """

    def __init__(
        self,
        enabled: bool = True,
        degrade_corrupt: bool = True,
        quarantine: bool = False,
        quarantine_fpr_multiple: float = 8.0,
        quarantine_min_probes: int = 50,
    ) -> None:
        self.enabled = enabled
        self.degrade_corrupt = degrade_corrupt
        self.quarantine = quarantine
        self.quarantine_fpr_multiple = quarantine_fpr_multiple
        self.quarantine_min_probes = quarantine_min_probes
        self._filters: dict[str, KeyFilter] = {}
        # Foreground queries and background compaction share the
        # dictionary; the lock keeps memoization and the degraded set
        # consistent (one fetch, one degradation count per run).
        self._lock = threading.RLock()
        #: Runs whose envelope proved undecodable (served filter-less).
        self.degraded: set[str] = set()
        #: Runs flagged by the FP-feedback detector (§ adversarial
        #: robustness): observed FPR exceeded the quarantine multiple of
        #: the filter's design FPR.  Sticky until the run is compacted
        #: away (the rebuild re-salts and re-sizes the filter).
        self.under_attack: set[str] = set()
        # Per-run rejectable-query outcomes: name -> [negatives, FPs].
        self._outcomes: dict[str, list[int]] = {}
        # Design FPR published by each run's filter, cached at fetch time.
        self._design_fpr: dict[str, float] = {}

    def get_filter(self, reader: SSTReader, stats: PerfStats) -> KeyFilter | None:
        """Fetch (and memoize) the deserialized filter of an SST.

        Returns None when the SST carries no filter block — or when its
        envelope is corrupt and degradation is on.  Fetch cost (block read)
        and deserialization CPU are charged to ``stats``; with the
        dictionary enabled both are paid once per run lifetime.
        """
        name = reader.meta.name
        with self._lock:
            if name in self.degraded:
                return None
            cached = self._filters.get(name)
            if cached is not None:
                return cached
            envelope = reader.filter_block_bytes()
            if not envelope:
                return None
            try:
                with Stopwatch(stats, "deserialize_ns"):
                    filt = deserialize_filter(envelope)
            except SerializationError:
                if not self.degrade_corrupt:
                    raise
                self.degraded.add(name)
                stats.add(filters_degraded=1)
                return None
            if self.enabled:
                self._filters[name] = filt
            if self.quarantine and name not in self._design_fpr:
                design = filt.design_fpr()
                if design is not None and design > 0.0:
                    self._design_fpr[name] = design
            return filt

    def record_outcome(
        self, name: str, *, negatives: int = 0, false_positives: int = 0
    ) -> bool:
        """Feed one run's rejectable-query outcomes to the attack detector.

        Returns True exactly once per run: the call that pushes the run's
        observed FPR past ``quarantine_fpr_multiple`` times its design FPR
        (with at least ``quarantine_min_probes`` rejectable queries seen),
        adding it to :attr:`under_attack`.  No-op unless quarantine is on
        and the run's filter published a design FPR.
        """
        if not self.quarantine:
            return False
        with self._lock:
            design = self._design_fpr.get(name)
            if design is None or name in self.under_attack:
                return False
            counts = self._outcomes.get(name)
            if counts is None:
                counts = [0, 0]
                self._outcomes[name] = counts
            counts[0] += negatives
            counts[1] += false_positives
            if counts[0] + counts[1] < self.quarantine_min_probes:
                return False
            if observed_fpr(counts[1], counts[0]) <= (
                self.quarantine_fpr_multiple * design
            ):
                return False
            self.under_attack.add(name)
            return True

    def under_attack_snapshot(self) -> tuple[str, ...]:
        """Sorted consistent copy of the flagged-run set (see degraded)."""
        with self._lock:
            return tuple(sorted(self.under_attack))

    def drop_run(self, name: str) -> None:
        """Forget a run's filter (its SST was compacted away)."""
        with self._lock:
            self._filters.pop(name, None)
            self.degraded.discard(name)
            self.under_attack.discard(name)
            self._outcomes.pop(name, None)
            self._design_fpr.pop(name, None)

    def degraded_snapshot(self) -> tuple[str, ...]:
        """Sorted consistent copy of the degraded-run set.

        ``DB.health()`` reads the set while queries on other threads may
        be degrading runs; iterating it bare would race the mutation
        (``set changed size during iteration``).
        """
        with self._lock:
            return tuple(sorted(self.degraded))

    def __len__(self) -> int:
        return len(self._filters)


def batched_point_verdicts(
    filt: KeyFilter | None, keys: Sequence[int]
) -> tuple[Sequence[bool], int]:
    """Probe one run's filter for a whole point-lookup key group at once.

    The point-path sibling of :func:`batched_tightened_ranges`: where a
    range seek shares one frontier sweep across runs, ``multi_get`` groups
    its surviving keys per run and answers each group with one
    :meth:`~repro.filters.base.KeyFilter.may_contain_batch` call.

    ``filt is None`` means the run has fence pointers only: every key
    passes through positive at zero probe cost.  Returns
    ``(verdicts, batch_sweeps)``; ``batch_sweeps`` (0 or 1) feeds
    ``PerfStats.filter_batch_probes`` exactly like the range path's
    frontier sweeps, so the counter spans both bulk probe shapes.
    """
    if filt is None or not keys:
        return [True] * len(keys), 0
    return filt.may_contain_batch(keys), 1


def batched_tightened_ranges(
    filters: Sequence[KeyFilter | None], low: int, high: int
) -> tuple[list[tuple[int, int] | None], int]:
    """Tighten ``[low, high]`` against every run's filter in one sweep.

    The multi-SST seek of the read path: all overlapping runs probe the same
    range, so their Rosetta instances share one frontier sweep per level
    (:func:`repro.core.doubting.tighten_across_stacks`) — the 64-bit base
    hashes of each candidate prefix are computed once across all runs.

    ``filters[i] is None`` means run *i* has fence pointers only and passes
    through as ``(low, high)``; non-Rosetta filters (and Rosetta instances
    the engine cannot batch: empty, or domains wider than 64 bits) fall back
    to their scalar :meth:`~repro.filters.base.KeyFilter.tightened_range`.
    Per-instance :class:`~repro.core.rosetta.ProbeStats` are charged exactly
    as if each filter had been probed alone, except that probe counts are
    the deduped bulk probes.

    Returns ``(results, batch_sweeps)`` — one tightened range (or ``None``
    for a definite miss) per input filter, and the number of multi-run
    frontier sweeps issued (0 or 1; the caller feeds it into
    ``PerfStats.filter_batch_probes``).
    """
    results: list[tuple[int, int] | None] = [None] * len(filters)
    stacks = []
    key_bits = []
    cores = []
    slots = []
    for i, filt in enumerate(filters):
        if filt is None:
            results[i] = (low, high)
            continue
        core = getattr(filt, "rosetta", None) if isinstance(filt, RosettaFilter) else None
        if core is not None and core.key_bits <= 64 and core.num_keys > 0:
            stacks.append(core.levels)
            key_bits.append(core.key_bits)
            cores.append(core)
            slots.append(i)
        else:
            results[i] = filt.tightened_range(low, high)
    if not stacks:
        return results, 0
    tightened, outcome = doubting.tighten_across_stacks(
        stacks, key_bits, low, high
    )
    # Queries inside the sweep follow job order, minus jobs whose domain
    # clamp emptied the range; reconstruct that mapping to route per-query
    # interval charges back to the owning instance.
    intervals_of_job: dict[int, int] = {}
    query = 0
    for j, bits in enumerate(key_bits):
        if max(int(low), 0) <= min(int(high), (1 << bits) - 1):
            intervals_of_job[j] = int(outcome.intervals_per_query[query])
            query += 1
    probes = outcome.probes_per_job
    for j, (core, slot) in enumerate(zip(cores, slots)):
        core.stats.range_queries += 1
        if probes is not None:
            core.stats.bloom_probes += int(probes[j])
        core.stats.dyadic_intervals += intervals_of_job.get(j, 0)
        core.stats.bulk_probe_calls += outcome.bulk_probe_calls
        results[slot] = tightened[j]
    return results, 1
