"""Per-run filter management — the §4 integration machinery.

Two pieces:

* :class:`FilterDictionary` — "we construct a dictionary containing the
  mapping of the deserialized bits of each Rosetta instance and its
  corresponding run", preventing a deserialization per query.  Entries are
  dropped when a compaction destroys the run.  Disabling it (an ablation in
  ``benchmarks/``) re-deserializes the filter block on every query, which
  is what the paper's deserialization-cost discussion is about.
* :func:`probe_run_filter` — the standard probe path: fetch filter bytes
  (block cache → device), deserialize (stopwatch), probe (stopwatch), and
  record the verdict.
"""

from __future__ import annotations

from repro.filters.base import KeyFilter, deserialize_filter
from repro.lsm.sstable import SSTReader
from repro.lsm.stats import PerfStats, Stopwatch

__all__ = ["FilterDictionary"]


class FilterDictionary:
    """Cache of deserialized filter instances, keyed by SST file name."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._filters: dict[str, KeyFilter] = {}

    def get_filter(self, reader: SSTReader, stats: PerfStats) -> KeyFilter | None:
        """Fetch (and memoize) the deserialized filter of an SST.

        Returns None when the SST carries no filter block.  Fetch cost
        (block read) and deserialization CPU are charged to ``stats``;
        with the dictionary enabled both are paid once per run lifetime.
        """
        name = reader.meta.name
        cached = self._filters.get(name)
        if cached is not None:
            return cached
        envelope = reader.filter_block_bytes()
        if not envelope:
            return None
        with Stopwatch(stats, "deserialize_ns"):
            filt = deserialize_filter(envelope)
        if self.enabled:
            self._filters[name] = filt
        return filt

    def drop_run(self, name: str) -> None:
        """Forget a run's filter (its SST was compacted away)."""
        self._filters.pop(name, None)

    def __len__(self) -> int:
        return len(self._filters)
