"""Atomic write batches — the RocksDB ``WriteBatch`` analogue.

A batch accumulates puts and deletes and applies them atomically: the
whole batch is persisted as **one** WAL frame before any operation touches
the memtable, so recovery replays either the entire batch or none of it.
(The single-frame encoding is what makes the atomicity real: a torn write
invalidates the frame's CRC and the §WAL replay drops it whole.)

::

    batch = WriteBatch()
    batch.put(1, b"a")
    batch.delete(2)
    db.write(batch)
"""

from __future__ import annotations

import struct
from typing import Iterator

from repro.errors import StoreError
from repro.lsm.format import ValueTag

__all__ = ["WriteBatch"]


class WriteBatch:
    """An ordered collection of mutations applied atomically."""

    def __init__(self) -> None:
        self._operations: list[tuple[int, bytes, bytes]] = []

    # ------------------------------------------------------------------
    # Building
    # ------------------------------------------------------------------
    def put(self, key: bytes, value: bytes) -> "WriteBatch":
        """Queue an upsert (encoded key bytes). Returns self for chaining."""
        self._operations.append((ValueTag.PUT, bytes(key), bytes(value)))
        return self

    def delete(self, key: bytes) -> "WriteBatch":
        """Queue a tombstone. Returns self for chaining."""
        self._operations.append((ValueTag.DELETE, bytes(key), b""))
        return self

    def clear(self) -> None:
        """Discard all queued operations."""
        self._operations.clear()

    def __len__(self) -> int:
        return len(self._operations)

    def __iter__(self) -> Iterator[tuple[int, bytes, bytes]]:
        return iter(self._operations)

    @property
    def approximate_bytes(self) -> int:
        """Payload size of the queued operations."""
        return sum(
            1 + len(key) + len(value) for _, key, value in self._operations
        )

    # ------------------------------------------------------------------
    # Wire format (one WAL payload for the whole batch)
    # ------------------------------------------------------------------
    def encode(self) -> bytes:
        """Serialize the batch into a single WAL-frame payload.

        Layout: ``[u32 count]`` then per op ``[u8 tag][u32 klen][key]
        [u32 vlen][value]``.
        """
        parts = [struct.pack("<I", len(self._operations))]
        for tag, key, value in self._operations:
            parts.append(bytes([tag]))
            parts.append(struct.pack("<I", len(key)))
            parts.append(key)
            parts.append(struct.pack("<I", len(value)))
            parts.append(value)
        return b"".join(parts)

    @classmethod
    def decode(cls, payload: bytes) -> "WriteBatch":
        """Reconstruct a batch from :meth:`encode` output."""
        batch = cls()
        try:
            (count,) = struct.unpack_from("<I", payload, 0)
            offset = 4
            for _ in range(count):
                tag = payload[offset]
                offset += 1
                (key_len,) = struct.unpack_from("<I", payload, offset)
                offset += 4
                key = payload[offset : offset + key_len]
                offset += key_len
                (value_len,) = struct.unpack_from("<I", payload, offset)
                offset += 4
                value = payload[offset : offset + value_len]
                offset += value_len
                if len(key) != key_len or len(value) != value_len:
                    raise StoreError("truncated write batch")
                batch._operations.append((tag, key, value))
        except struct.error as exc:
            raise StoreError("corrupt write batch payload") from exc
        return batch
