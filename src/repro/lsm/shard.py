"""Key-range shard routing for the serving layer.

One logical key domain ``[0, 2^key_bits)`` is partitioned into ``N``
contiguous, non-overlapping shards.  The router is pure metadata — a
sorted list of interior boundaries — so routing a key is one bisect and
routing a range is a slice of the shard list.  Contiguity is what makes
range queries cheap to shard: a range ``[low, high]`` touches exactly the
shards whose spans it overlaps, and concatenating their (sorted) partial
answers in shard order yields the globally sorted result with no merge.

Boundaries default to equal-width slices of the domain; callers with a
skewed keyspace can pass explicit interior boundaries instead (the
serving layer exposes this as ``ServingOptions.shard_boundaries``).
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Sequence

from repro.errors import FilterQueryError, InvalidOptionsError

__all__ = ["ShardRouter"]


class ShardRouter:
    """Maps keys and key ranges onto ``num_shards`` contiguous shards.

    Shard ``i`` owns ``[bounds[i], bounds[i+1])`` where ``bounds`` is the
    full boundary list including the domain endpoints ``0`` and
    ``2^key_bits``.  Immutable after construction, so it is safe to share
    across any number of client and worker threads without locking.
    """

    __slots__ = ("key_bits", "num_shards", "_bounds")

    def __init__(
        self,
        key_bits: int,
        num_shards: int,
        boundaries: Sequence[int] | None = None,
    ) -> None:
        if num_shards < 1:
            raise InvalidOptionsError(f"num_shards must be >= 1: {num_shards}")
        domain = 1 << key_bits
        if boundaries is None:
            interior = [
                (domain * index) // num_shards
                for index in range(1, num_shards)
            ]
        else:
            interior = [int(b) for b in boundaries]
            if len(interior) != num_shards - 1:
                raise InvalidOptionsError(
                    f"{num_shards} shards need exactly {num_shards - 1} "
                    f"interior boundaries, got {len(interior)}"
                )
            if any(
                not 0 < b < domain for b in interior
            ) or interior != sorted(set(interior)):
                raise InvalidOptionsError(
                    "shard boundaries must be strictly increasing and "
                    f"inside (0, 2^{key_bits})"
                )
        self.key_bits = key_bits
        self.num_shards = num_shards
        self._bounds: tuple[int, ...] = tuple(interior)

    def shard_of(self, key: int) -> int:
        """Index of the shard owning ``key``."""
        key = int(key)
        if key < 0 or key >> self.key_bits:
            raise FilterQueryError(
                f"key {key} outside domain [0, 2^{self.key_bits})"
            )
        return bisect_right(self._bounds, key)

    def span(self, shard: int) -> tuple[int, int]:
        """Inclusive key span ``(low, high)`` owned by ``shard``."""
        if not 0 <= shard < self.num_shards:
            raise InvalidOptionsError(f"shard {shard} out of range")
        low = self._bounds[shard - 1] if shard > 0 else 0
        high = (
            self._bounds[shard] - 1
            if shard < self.num_shards - 1
            else (1 << self.key_bits) - 1
        )
        return low, high

    def split_range(
        self, low: int, high: int
    ) -> list[tuple[int, int, int]]:
        """Split ``[low, high]`` into per-shard ``(shard, low, high)`` pieces.

        Pieces come back in shard (= key) order and cover the input range
        exactly, so concatenating per-shard sorted answers reassembles the
        global sorted answer.  An inverted range raises eagerly, matching
        :meth:`DB.range_iter`.
        """
        if low > high:
            raise FilterQueryError(f"invalid range: low={low} > high={high}")
        first = self.shard_of(max(low, 0))
        last = self.shard_of(min(high, (1 << self.key_bits) - 1))
        pieces: list[tuple[int, int, int]] = []
        for shard in range(first, last + 1):
            shard_low, shard_high = self.span(shard)
            pieces.append(
                (shard, max(low, shard_low), min(high, shard_high))
            )
        return pieces

    def group_keys(self, keys: Sequence[int]) -> dict[int, list[int]]:
        """Bucket ``keys`` by owning shard (insertion order preserved)."""
        groups: dict[int, list[int]] = {}
        for key in keys:
            groups.setdefault(self.shard_of(key), []).append(key)
        return groups

    def describe(self) -> str:
        """One-line human-readable span table."""
        spans = ", ".join(
            f"s{index}=[{self.span(index)[0]}, {self.span(index)[1]}]"
            for index in range(self.num_shards)
        )
        return f"ShardRouter({self.num_shards} shards: {spans})"
