"""DB configuration mirroring the RocksDB knobs the paper tunes (§4–5).

The paper's integration section calls out specific options; each has a
direct counterpart here:

* ``level0_file_num_compaction_trigger=3`` →
  :attr:`DBOptions.level0_file_num_compaction_trigger` (bounding the L0
  iterator count that dominates empty-query CPU);
* ``max_bytes_for_level_base`` → :attr:`DBOptions.max_bytes_for_level_base`
  (restricting L0 growth so iterators spawn per level, not per file);
* ``cache_index_and_filter_blocks(+_with_high_priority)`` and
  ``pin_l0_filter_and_index_blocks_in_cache`` → the block-cache priority
  flags;
* per-SST full filters (block-based filters are deprecated) → one filter
  instance per SST file, rebuilt at compaction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import InvalidOptionsError
from repro.filters.base import FilterFactory
from repro.lsm.env import DeviceModel

__all__ = ["DBOptions"]


@dataclass
class DBOptions:
    """Tuning knobs for :class:`repro.lsm.db.DB`.

    Defaults are scaled-down analogues of the paper's RocksDB setup —
    small enough that benchmarks run in seconds, structurally identical
    (multiple levels, 3-file L0, per-SST filters).
    """

    #: Key domain width in bits (the paper uses 64-bit keys).
    key_bits: int = 64

    #: Memtable (write buffer) capacity before a flush, in bytes.
    memtable_size_bytes: int = 1 << 20

    #: Target size of one SST file (Fig. 6(A) varies this).
    sst_size_bytes: int = 1 << 20

    #: Data-block size inside an SST (RocksDB default 4 KiB).
    block_size_bytes: int = 4096

    #: Number of L0 files that triggers an L0->L1 compaction (paper: 3).
    level0_file_num_compaction_trigger: int = 3

    #: Target size of L1; level i holds base * ratio^(i-1) bytes.
    max_bytes_for_level_base: int = 4 << 20

    #: LSM size ratio between adjacent levels (RocksDB default 10).
    level_size_ratio: int = 10

    #: Maximum number of levels.
    num_levels: int = 7

    #: Compaction policy: "leveled" (one sorted run per level, RocksDB
    #: default — what the paper evaluates) or "tiered" (up to
    #: ``level_size_ratio`` sorted runs per level before they merge down —
    #: cheaper writes, more runs for queries/filters to probe).
    compaction_style: str = "leveled"

    #: Filter recipe applied to every new SST (None = fence pointers only).
    filter_factory: FilterFactory | None = None

    # -- Adversarial robustness -----------------------------------------
    #: Store-wide seed for per-SST filter salting.  0 (default) disables
    #: salting and keeps filter blocks byte-identical to the historical
    #: format.  Nonzero: every SST's filter hashes are re-keyed with
    #: ``derive_filter_salt(seed, file_number)``, so a compaction rebuild
    #: (fresh file number) invalidates any false positives an adversary
    #: has learned.  Requires a salt-capable (hashed) filter recipe;
    #: structural recipes like SuRF are rejected at build time.
    filter_salt_seed: int = 0

    #: Enable the FP-feedback attack detector: per-run false-positive
    #: counters in the filter dictionary flag runs whose observed FPR
    #: exceeds ``quarantine_fpr_multiple`` times their design FPR.
    #: Flagged runs surface in ``DB.health()`` and their compaction is
    #: prioritized so the (salted) rebuild clears the attack.
    quarantine_filters: bool = False

    #: Observed-FPR multiple of the design FPR at which a run is flagged.
    quarantine_fpr_multiple: float = 8.0

    #: Minimum rejectable probes (negatives + false positives) a run must
    #: accumulate before it can be flagged — keeps small-sample noise from
    #: quarantining healthy filters.
    quarantine_min_probes: int = 50

    #: Block cache capacity in bytes (0 disables caching).
    block_cache_bytes: int = 8 << 20

    #: Cache filter and index blocks in the block cache (paper: true).
    cache_index_and_filter_blocks: bool = True

    #: Give filter/index blocks eviction priority over data blocks.
    cache_index_and_filter_blocks_with_high_priority: bool = True

    #: Pin L0 filter and index blocks so empty queries stay CPU-only.
    pin_l0_filter_and_index_blocks_in_cache: bool = True

    #: Keep deserialized filters in the §4 filter dictionary (ablation
    #: point: switching this off re-deserializes on every query).
    use_filter_dictionary: bool = True

    #: Storage device model name or instance (see repro.lsm.env).
    device: str | DeviceModel = "memory"

    #: Write-ahead logging (disable for bulk loads, as in the paper's setup).
    use_wal: bool = True

    #: Issue a durability barrier (:meth:`StorageEnv.sync_file`) after every
    #: WAL append.  This is the write-acknowledgement contract the crash
    #: harness verifies: with it on, a power cut never loses an acked write.
    wal_sync: bool = True

    #: Number of entries between restart points in a data block.
    block_restart_interval: int = 16

    # -- Online fault handling ------------------------------------------
    #: Extra attempts a transiently failing block read gets before the
    #: error propagates (0 disables retrying).
    io_retry_attempts: int = 3

    #: Modeled backoff charged per retry, doubling each attempt (charged
    #: into ``PerfStats.block_read_time_ns``; no real sleep).
    io_retry_backoff_ns: int = 1_000_000

    #: A corrupt/undecodable filter envelope marks that run filter-less and
    #: queries fall through to the data read (counted in
    #: ``PerfStats.filters_degraded``) instead of raising.  Off = the old
    #: paranoid behavior: raise ``SerializationError`` to the caller.
    degrade_corrupt_filters: bool = True

    #: fsync manifest replacements (atomicity comes from ``os.replace``
    #: either way; fsync additionally orders it against power loss on a
    #: real device — off by default to keep benchmarks fast).
    manifest_fsync: bool = False

    #: Storage-environment constructor ``(root, device, stats) -> StorageEnv``
    #: (None = plain :class:`~repro.lsm.env.StorageEnv`).  The hook the
    #: fault-injection harness uses to put a hostile device under a DB.
    env_factory: object | None = None

    # -- Background maintenance & write backpressure --------------------
    #: Worker threads for background flush/compaction.  0 (the default)
    #: runs all maintenance inline on the writing thread — the historical
    #: fully-synchronous semantics.  With workers, a full active memtable
    #: seals into the immutable queue (the WAL rotates with it) and writes
    #: continue while a worker flushes it.
    max_background_jobs: int = 0

    #: Ceiling on sealed-but-unflushed memtables.  Reaching it is a *stop*
    #: condition: writers block until a flush drains one (RocksDB's
    #: ``max_write_buffer_number`` analogue).
    max_immutable_memtables: int = 2

    #: L0 run count at which writes are *slowed*: each write is admitted
    #: immediately but charged ``delayed_write_ns`` of modeled delay
    #: (``PerfStats.write_delay_time_ns``; no real sleep).
    level0_slowdown_writes_trigger: int = 8

    #: L0 run count at which writes *stop*: the writer blocks (bounded by
    #: ``write_stall_timeout_s``) until compaction brings L0 back down.
    #: Only engages with ``max_background_jobs > 0`` — inline maintenance
    #: can never be behind its own writer.
    level0_stop_writes_trigger: int = 12

    #: Modeled per-write delay charged while the slowdown trigger is
    #: active (RocksDB's ``delayed_write_rate`` analogue, simplified).
    delayed_write_ns: int = 1_000_000

    #: Upper bound on one stop-trigger block before the write fails with
    #: :class:`~repro.errors.WriteStallTimeoutError`.
    write_stall_timeout_s: float = 10.0

    #: Maximum key-range slices one compaction may be split into (RocksDB's
    #: ``max_subcompactions``).  0 (the default) follows
    #: ``max(1, max_background_jobs)``; 1 disables splitting.
    max_subcompactions: int = 0

    #: Maximum source-level runs per leveled compaction window (RocksDB's
    #: per-file picking).  An oversize level is drained in windows of this
    #: many contiguous runs (plus their target-level overlap closure), so
    #: several disjoint jobs in the same level pair can run concurrently
    #: instead of one whole-level merge.
    max_compaction_input_files: int = 4

    #: Scheduler constructor ``(options) -> scheduler`` overriding the
    #: default choice (None = InlineScheduler for 0 jobs, ThreadPoolScheduler
    #: otherwise).  The torture harness injects DeterministicScheduler here.
    scheduler_factory: object | None = None

    def validate(self) -> None:
        """Raise :class:`InvalidOptionsError` on inconsistent settings."""
        if self.key_bits < 1 or self.key_bits > 512:
            raise InvalidOptionsError(f"key_bits out of range: {self.key_bits}")
        if self.memtable_size_bytes < 1024:
            raise InvalidOptionsError("memtable_size_bytes must be >= 1 KiB")
        if self.sst_size_bytes < self.block_size_bytes:
            raise InvalidOptionsError("sst_size_bytes must be >= block_size_bytes")
        if self.block_size_bytes < 128:
            raise InvalidOptionsError("block_size_bytes must be >= 128")
        if self.level0_file_num_compaction_trigger < 1:
            raise InvalidOptionsError(
                "level0_file_num_compaction_trigger must be >= 1"
            )
        if self.level_size_ratio < 2:
            raise InvalidOptionsError("level_size_ratio must be >= 2")
        if self.num_levels < 2:
            raise InvalidOptionsError("num_levels must be >= 2")
        if self.block_restart_interval < 1:
            raise InvalidOptionsError("block_restart_interval must be >= 1")
        if self.compaction_style not in ("leveled", "tiered"):
            raise InvalidOptionsError(
                f"compaction_style must be 'leveled' or 'tiered', "
                f"got {self.compaction_style!r}"
            )
        if not 0 <= self.filter_salt_seed < 1 << 64:
            raise InvalidOptionsError(
                f"filter_salt_seed must be a 64-bit value, "
                f"got {self.filter_salt_seed}"
            )
        if (
            self.filter_salt_seed
            and self.filter_factory is not None
            and not self.filter_factory.salt_capable
        ):
            raise InvalidOptionsError(
                f"filter_salt_seed is set but filter recipe "
                f"{self.filter_factory.name!r} is not salt-capable "
                "(structural filters like SuRF cannot be re-keyed)"
            )
        if self.quarantine_fpr_multiple <= 1.0:
            raise InvalidOptionsError(
                "quarantine_fpr_multiple must be > 1.0"
            )
        if self.quarantine_min_probes < 1:
            raise InvalidOptionsError("quarantine_min_probes must be >= 1")
        if self.io_retry_attempts < 0:
            raise InvalidOptionsError("io_retry_attempts must be >= 0")
        if self.io_retry_backoff_ns < 0:
            raise InvalidOptionsError("io_retry_backoff_ns must be >= 0")
        if self.env_factory is not None and not callable(self.env_factory):
            raise InvalidOptionsError("env_factory must be callable or None")
        if self.max_background_jobs < 0:
            raise InvalidOptionsError("max_background_jobs must be >= 0")
        if self.max_compaction_input_files < 1:
            raise InvalidOptionsError(
                "max_compaction_input_files must be >= 1"
            )
        if self.max_immutable_memtables < 1:
            raise InvalidOptionsError("max_immutable_memtables must be >= 1")
        if self.level0_slowdown_writes_trigger < 1:
            raise InvalidOptionsError(
                "level0_slowdown_writes_trigger must be >= 1"
            )
        if self.level0_stop_writes_trigger < self.level0_slowdown_writes_trigger:
            raise InvalidOptionsError(
                "level0_stop_writes_trigger must be >= "
                "level0_slowdown_writes_trigger"
            )
        if self.delayed_write_ns < 0:
            raise InvalidOptionsError("delayed_write_ns must be >= 0")
        if self.write_stall_timeout_s <= 0:
            raise InvalidOptionsError("write_stall_timeout_s must be > 0")
        if self.max_subcompactions < 0:
            raise InvalidOptionsError("max_subcompactions must be >= 0")
        if self.scheduler_factory is not None and not callable(
            self.scheduler_factory
        ):
            raise InvalidOptionsError("scheduler_factory must be callable or None")

    @property
    def key_width_bytes(self) -> int:
        """Fixed on-disk key width (keys are stored big-endian)."""
        return (self.key_bits + 7) // 8

    def level_target_bytes(self, level: int) -> int:
        """Capacity target for ``level`` (level 0 is file-count driven)."""
        if level <= 0:
            raise InvalidOptionsError("level targets are defined for level >= 1")
        return self.max_bytes_for_level_base * (
            self.level_size_ratio ** (level - 1)
        )
