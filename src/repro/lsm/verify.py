"""Store integrity verification — the ``VerifyChecksum`` analogue.

Walks every live SST file and validates, block by block, everything the
formats can self-check: data-block CRCs and key ordering, index-block
CRCs and fence consistency, filter-envelope decodability, meta/footer
agreement, and cross-run level invariants.  Returns a structured report
rather than raising, so operators can inspect all damage at once; the
DB wrapper (:meth:`repro.lsm.db.DB.verify`) is the public entry point.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ReproError
from repro.filters.base import deserialize_filter
from repro.lsm.format import decode_data_block
from repro.lsm.version import Run, Version

__all__ = ["VerificationReport", "verify_version"]


@dataclass
class VerificationReport:
    """Outcome of an integrity walk."""

    files_checked: int = 0
    blocks_checked: int = 0
    entries_checked: int = 0
    filters_checked: int = 0
    errors: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no corruption or invariant violation was found."""
        return not self.errors

    def add_error(self, context: str, problem: str) -> None:
        """Record one finding."""
        self.errors.append(f"{context}: {problem}")

    def summary(self) -> str:
        """One-paragraph human-readable result."""
        status = "OK" if self.ok else f"{len(self.errors)} ERROR(S)"
        lines = [
            f"integrity check: {status} — {self.files_checked} files, "
            f"{self.blocks_checked} blocks, {self.entries_checked} entries, "
            f"{self.filters_checked} filters"
        ]
        lines.extend(f"  - {error}" for error in self.errors)
        return "\n".join(lines)


def verify_version(version: Version) -> VerificationReport:
    """Verify every run of a :class:`Version` (all levels, newest first)."""
    report = VerificationReport()
    for run in version.all_runs_newest_first():
        _verify_run(run, report)
    _verify_level_invariants(version, report)
    return report


def _verify_run(run: Run, report: VerificationReport) -> None:
    reader = run.reader
    name = reader.meta.name
    report.files_checked += 1

    previous_key: bytes | None = None
    entry_count = 0
    for block_index in range(reader.num_data_blocks()):
        fence_key, handle = reader._fence_pointers[block_index]  # noqa: SLF001
        try:
            payload = reader._read_block(handle)  # noqa: SLF001
            entries = decode_data_block(payload)
        except ReproError as exc:
            report.add_error(f"{name} block {block_index}", str(exc))
            continue
        report.blocks_checked += 1
        for key, _tag, _value in entries:
            entry_count += 1
            if previous_key is not None and key <= previous_key:
                report.add_error(
                    f"{name} block {block_index}",
                    f"keys out of order ({previous_key!r} then {key!r})",
                )
            previous_key = key
        if entries and entries[-1][0] != fence_key:
            report.add_error(
                f"{name} block {block_index}",
                "fence pointer does not match the block's last key",
            )
    report.entries_checked += entry_count

    if entry_count != reader.meta.num_entries:
        report.add_error(
            name,
            f"meta advertises {reader.meta.num_entries} entries, "
            f"decoded {entry_count}",
        )
    if previous_key is not None and previous_key != reader.meta.max_key:
        report.add_error(name, "meta max_key does not match the data")

    envelope = b""
    try:
        envelope = reader.filter_block_bytes()
    except ReproError as exc:
        report.add_error(f"{name} filter block", str(exc))
    if envelope:
        try:
            deserialize_filter(envelope)
            report.filters_checked += 1
        except ReproError as exc:
            report.add_error(f"{name} filter block", str(exc))


def _verify_level_invariants(version: Version, report: VerificationReport) -> None:
    """Leveled levels must stay sorted and disjoint per group."""
    for level, runs in sorted(version.levels.items()):
        by_group: dict[object, list[Run]] = {}
        for index, run in enumerate(runs):
            group = run.group_id if run.group_id is not None else f"solo-{index}"
            by_group.setdefault(group, []).append(run)
        for group, members in by_group.items():
            ordered = sorted(members, key=lambda r: r.reader.meta.min_key)
            for left, right in zip(ordered, ordered[1:]):
                if left.reader.meta.max_key >= right.reader.meta.min_key:
                    report.add_error(
                        f"level {level} group {group}",
                        f"files {left.name} and {right.name} overlap",
                    )
