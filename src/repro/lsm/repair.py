"""Offline store repair — the ``RepairDB`` analogue.

When a store fails to open (corrupt SST, missing file), `repair_store`
salvages what it can: it walks the manifest, verifies each referenced SST
in isolation, drops the unreadable ones from the manifest, and leaves the
store openable again.  Repair is *lossy by design* — dropping a run loses
that run's updates — so it reports exactly which files were sacrificed and
quarantines (renames aside) rather than deletes the damaged ones.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field

from repro.errors import ReproError, StoreError
from repro.lsm.block_cache import BlockCache
from repro.lsm.env import StorageEnv
from repro.lsm.format import decode_data_block
from repro.lsm.options import DBOptions
from repro.lsm.sstable import SSTMeta, SSTReader

_MANIFEST = "MANIFEST.json"

__all__ = ["RepairOutcome", "repair_store"]


@dataclass
class RepairOutcome:
    """What a repair pass did."""

    healthy_files: list[str] = field(default_factory=list)
    dropped_files: list[str] = field(default_factory=list)
    salvaged_entries: int = 0
    quarantined: list[str] = field(default_factory=list)

    @property
    def lossless(self) -> bool:
        """True when nothing had to be dropped."""
        return not self.dropped_files

    def summary(self) -> str:
        """Human-readable outcome."""
        if self.lossless:
            return (
                f"repair: store healthy — {len(self.healthy_files)} files, "
                f"{self.salvaged_entries} entries kept"
            )
        return (
            f"repair: dropped {len(self.dropped_files)} damaged file(s); "
            f"kept {len(self.healthy_files)} files / "
            f"{self.salvaged_entries} entries; "
            f"quarantined: {', '.join(self.quarantined) or 'none'}"
        )


def _probe_sst(env: StorageEnv, name: str, options: DBOptions) -> int:
    """Fully read one SST; returns its entry count or raises on damage."""
    from repro.filters.base import deserialize_filter

    file_size = env.file_size(name)
    meta = SSTMeta(
        name=name, num_entries=0, min_key=b"", max_key=b"",
        file_size=file_size,
    )
    reader = SSTReader(env, meta, options, BlockCache(0))
    entries = 0
    for block_index in range(reader.num_data_blocks()):
        _, handle = reader._fence_pointers[block_index]  # noqa: SLF001
        payload = reader._read_block(handle, cacheable=False)  # noqa: SLF001
        entries += len(decode_data_block(payload))
    envelope = reader.filter_block_bytes()
    if envelope:
        deserialize_filter(envelope)  # envelope CRC failures surface here
    return entries


def repair_store(path: str, options: DBOptions | None = None) -> RepairOutcome:
    """Make the store at ``path`` openable again, dropping damaged runs.

    Verifies every SST referenced by the manifest; unreadable or missing
    files are removed from the manifest, and damaged ones renamed to
    ``<name>.quarantine`` for offline inspection.  A store without a
    manifest cannot be repaired (there is no file list to salvage from).
    """
    options = options if options is not None else DBOptions()
    env = StorageEnv(path, "memory")
    if not env.exists(_MANIFEST):
        raise StoreError(f"no manifest at {path}; nothing to repair from")
    manifest = json.loads(env.read_file(_MANIFEST))
    outcome = RepairOutcome()

    def file_ok(name: str) -> bool:
        if not env.exists(name):
            outcome.dropped_files.append(name)
            return False
        try:
            entries = _probe_sst(env, name, options)
        except (ReproError, OSError):
            outcome.dropped_files.append(name)
            try:
                os.rename(env.path(name), env.path(name) + ".quarantine")
                outcome.quarantined.append(name + ".quarantine")
            except OSError:
                pass
            return False
        outcome.healthy_files.append(name)
        outcome.salvaged_entries += entries
        return True

    manifest["level0"] = [
        name for name in manifest.get("level0", []) if file_ok(name)
    ]
    repaired_levels: dict[str, list] = {}
    for level, entries in manifest.get("levels", {}).items():
        kept = [entry for entry in entries if file_ok(entry[0])]
        if kept:
            repaired_levels[level] = kept
    manifest["levels"] = repaired_levels
    # Atomic replacement: a crash mid-repair must not leave a torn manifest
    # on top of an already-damaged store.
    env.write_file_atomic(_MANIFEST, json.dumps(manifest).encode())
    env.close()
    return outcome
