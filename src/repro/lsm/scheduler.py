"""Maintenance schedulers: inline, thread-pool, and deterministic replay.

The DB hands every background unit of work (flush of a sealed memtable,
one compaction step) to a *scheduler* rather than spawning threads
itself.  Three implementations share one small interface:

``submit(name, fn)``
    Run ``fn`` as a background job, returning a :class:`JobHandle`.
``sync_point(tag)``
    A potential context-switch point.  The storage environment calls this
    at the top of every durable operation (see ``StorageEnv.yield_hook``),
    which is what lets the deterministic scheduler interleave foreground
    and background work at exactly the places crashes can occur.
``wait_for(predicate, timeout_s)``
    Block the calling thread until ``predicate()`` is true.  Used by the
    write-stall stop trigger and by ``DB.wait_idle``.
``notify()``
    Wake ``wait_for`` waiters after state they may be watching changed.
``make_lock()``
    A reentrant mutex that is safe to hold across ``sync_point`` yields.
``close(force)``
    Join workers.  With ``force=True`` (simulated power cut) parked jobs
    are released and unwound without running further I/O.

Implementations
---------------
:class:`InlineScheduler`
    No concurrency: ``submit`` runs the job on the calling thread before
    returning.  This is the default (``DBOptions.max_background_jobs == 0``)
    and preserves the historical fully-synchronous semantics bit for bit —
    including ``PowerCutError`` propagating to the writer that triggered
    the flush.

:class:`ThreadPoolScheduler`
    Real worker threads and a condition variable.  ``sync_point`` is a
    no-op; interleavings are whatever the OS produces.  This is what
    production-style configurations (``max_background_jobs > 0``) use.

:class:`DeterministicScheduler`
    Cooperative token passing over real threads for torture testing: only
    the token holder executes at any moment, and every ``sync_point``
    hands the token to a pseudo-randomly chosen runnable task using a
    seeded RNG.  The same ``(workload seed, scheduler seed, crash point)``
    triple therefore replays the exact same interleaving, which makes
    concurrency bugs reproducible instead of flaky.  A ``PowerCutError``
    raised by any task marks the scheduler crashed; every other task is
    unwound with ``PowerCutError`` at its next yield, modelling the whole
    machine dying at once.
"""

from __future__ import annotations

import queue
import random
import threading
import time
from typing import Callable, List, Optional

from ..errors import PowerCutError

__all__ = [
    "JobHandle",
    "InlineScheduler",
    "ThreadPoolScheduler",
    "DeterministicScheduler",
    "CooperativeLock",
]


class JobHandle:
    """Completion record for one submitted job."""

    __slots__ = ("name", "done", "error", "result")

    def __init__(self, name: str) -> None:
        self.name = name
        self.done = False
        self.error: Optional[BaseException] = None
        self.result = None


class InlineScheduler:
    """Synchronous execution on the caller's thread (the legacy semantics).

    ``submit`` does not catch anything: the DB's job bodies convert
    ordinary I/O failures into degraded mode themselves, and exceptions
    that must reach the caller (``PowerCutError``) do so exactly as the
    pre-concurrency store behaved.
    """

    concurrent = False
    crashed = False
    workers = 1  # one caller thread; nothing ever runs alongside it

    def submit(self, name: str, fn: Callable[[], object]) -> JobHandle:
        handle = JobHandle(name)
        handle.result = fn()
        handle.done = True
        return handle

    def sync_point(self, tag: str = "") -> None:
        return None

    def wait_for(
        self, predicate: Callable[[], bool], timeout_s: Optional[float] = None
    ) -> bool:
        return bool(predicate())

    def notify(self) -> None:
        return None

    def make_lock(self) -> threading.RLock:
        return threading.RLock()

    def close(self, force: bool = False) -> None:
        return None


class ThreadPoolScheduler:
    """A small pool of real daemon worker threads.

    Jobs are queued FIFO; workers record results/errors on the handle and
    broadcast on a condition variable so ``wait_for`` (stall waits,
    ``DB.wait_idle``) re-evaluates its predicate promptly.
    """

    concurrent = True

    def __init__(self, num_workers: int = 1, name: str = "lsm-maintenance") -> None:
        self._queue: "queue.SimpleQueue" = queue.SimpleQueue()
        self._cond = threading.Condition()
        self.crashed = False
        self._closed = False
        self._threads: List[threading.Thread] = []
        #: Pool width — callers (subcompaction fan-out) use it to bound
        #: how many helper jobs are worth submitting.
        self.workers = max(1, num_workers)
        for index in range(max(1, num_workers)):
            thread = threading.Thread(
                target=self._worker_main, name=f"{name}-{index}", daemon=True
            )
            thread.start()
            self._threads.append(thread)

    def _worker_main(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                return
            handle, fn = item
            try:
                handle.result = fn()
            except PowerCutError as exc:  # pragma: no cover - torture-only path
                handle.error = exc
                self.crashed = True
            except BaseException as exc:  # noqa: BLE001 - recorded, not lost
                handle.error = exc
            finally:
                handle.done = True
                self.notify()

    def submit(self, name: str, fn: Callable[[], object]) -> JobHandle:
        handle = JobHandle(name)
        self._queue.put((handle, fn))
        return handle

    def sync_point(self, tag: str = "") -> None:
        return None

    def wait_for(
        self, predicate: Callable[[], bool], timeout_s: Optional[float] = None
    ) -> bool:
        deadline = None if timeout_s is None else time.monotonic() + timeout_s
        with self._cond:
            while True:
                if self.crashed:
                    raise PowerCutError("scheduler crashed while waiting")
                if predicate():
                    return True
                if deadline is None:
                    self._cond.wait(0.05)
                    continue
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._cond.wait(min(remaining, 0.05))

    def notify(self) -> None:
        with self._cond:
            self._cond.notify_all()

    def make_lock(self) -> threading.RLock:
        return threading.RLock()

    def close(self, force: bool = False) -> None:
        if self._closed:
            return
        self._closed = True
        for _ in self._threads:
            self._queue.put(None)
        for thread in self._threads:
            thread.join(timeout=10.0)


class CooperativeLock:
    """Reentrant mutex for the deterministic scheduler.

    Because only the token holder ever executes, plain attribute reads and
    writes here are race-free; contention is resolved by yielding the
    token until the owner releases.  Unlike ``threading.RLock`` it is safe
    to hold across ``sync_point`` — a blocked acquirer spins through
    yields instead of blocking the only runnable thread.
    """

    __slots__ = ("_scheduler", "_owner", "_depth")

    def __init__(self, scheduler: "DeterministicScheduler") -> None:
        self._scheduler = scheduler
        self._owner: Optional[int] = None
        self._depth = 0

    def acquire(self) -> bool:
        me = threading.get_ident()
        while True:
            if self._owner is None or self._owner == me:
                self._owner = me
                self._depth += 1
                return True
            self._scheduler.sync_point("lock-wait")

    def release(self) -> None:
        if self._owner != threading.get_ident():
            raise RuntimeError("CooperativeLock released by non-owner")
        self._depth -= 1
        if self._depth == 0:
            self._owner = None

    def __enter__(self) -> "CooperativeLock":
        self.acquire()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.release()


class _Task:
    __slots__ = ("name", "event", "is_job")

    def __init__(self, name: str, is_job: bool) -> None:
        self.name = name
        self.event = threading.Event()
        self.is_job = is_job


class DeterministicScheduler:
    """Seeded cooperative scheduler: one runnable task at a time.

    Token discipline: the thread currently holding the token runs; every
    other registered task is parked in ``_runnable`` waiting on its event.
    ``sync_point`` picks the next runner with the seeded RNG from
    ``runnable + [current]``; choosing ``current`` means "keep running".
    Job threads are created per ``submit`` and start parked, so a newly
    scheduled flush only begins executing when some sync point hands it
    the token.

    ``wait_yield_bound`` bounds cooperative waits: ``wait_for`` gives up
    (returns ``False``) after that many yields, which is what converts a
    genuinely wedged configuration into ``WriteStallTimeoutError`` instead
    of a hang.
    """

    concurrent = True
    #: No fixed pool: every submit gets a (parked) thread, so callers may
    #: fan out as wide as they like and the seeded token passing decides
    #: who actually runs.
    workers = None

    def __init__(self, seed: int = 0, wait_yield_bound: int = 50_000) -> None:
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self._runnable: List[_Task] = []
        self._tasks: dict[int, _Task] = {}
        self._threads: List[threading.Thread] = []
        self._dead = False
        self.crashed = False
        self.switches = 0
        self._wait_yield_bound = wait_yield_bound
        main = _Task("main", is_job=False)
        self._tasks[threading.get_ident()] = main

    # ------------------------------------------------------------------
    # Core token passing
    # ------------------------------------------------------------------
    def _current(self) -> Optional[_Task]:
        return self._tasks.get(threading.get_ident())

    def sync_point(self, tag: str = "") -> None:
        me = self._current()
        if me is None:
            return
        if self._dead:
            if me.is_job:
                raise PowerCutError(f"scheduler torn down at {tag!r}")
            return
        with self._lock:
            if not self._runnable:
                return
            choice = self._rng.choice(self._runnable + [me])
            if choice is me:
                return
            self.switches += 1
            self._runnable.remove(choice)
            self._runnable.append(me)
            me.event.clear()
            choice.event.set()
        me.event.wait()
        if self._dead and me.is_job:
            raise PowerCutError(f"scheduler torn down at {tag!r}")

    # ------------------------------------------------------------------
    # Job lifecycle
    # ------------------------------------------------------------------
    def submit(self, name: str, fn: Callable[[], object]) -> JobHandle:
        handle = JobHandle(name)
        task = _Task(name, is_job=True)
        # Register as runnable *before* the thread starts so a wait_for on
        # the submitting thread immediately sees the pending work.
        with self._lock:
            self._runnable.append(task)
        thread = threading.Thread(
            target=self._job_main,
            args=(task, fn, handle),
            name=f"det-{name}",
            daemon=True,
        )
        self._threads.append(thread)
        thread.start()
        return handle

    def _job_main(self, task: _Task, fn: Callable[[], object], handle: JobHandle) -> None:
        self._tasks[threading.get_ident()] = task
        task.event.wait()
        try:
            if self._dead:
                raise PowerCutError("scheduler torn down before job start")
            handle.result = fn()
        except PowerCutError as exc:
            handle.error = exc
            self.crashed = True
        except BaseException as exc:  # noqa: BLE001 - recorded, not lost
            handle.error = exc
        finally:
            handle.done = True
            with self._lock:
                self._tasks.pop(threading.get_ident(), None)
                if self._runnable and not self._dead:
                    nxt = self._rng.choice(self._runnable)
                    self._runnable.remove(nxt)
                    nxt.event.set()
                elif self._dead:
                    for parked in self._runnable:
                        parked.event.set()

    # ------------------------------------------------------------------
    # Waiting
    # ------------------------------------------------------------------
    def wait_for(
        self, predicate: Callable[[], bool], timeout_s: Optional[float] = None
    ) -> bool:
        # timeout_s is accepted for interface parity; deterministic waits
        # are bounded in yields, not wall time, to stay replayable.
        del timeout_s
        yields = 0
        while True:
            if self.crashed:
                raise PowerCutError("scheduler crashed while waiting")
            if predicate():
                return True
            with self._lock:
                others = bool(self._runnable)
            if not others:
                return bool(predicate())
            if yields >= self._wait_yield_bound:
                return False
            self.sync_point("wait")
            yields += 1

    def notify(self) -> None:
        return None

    def make_lock(self) -> CooperativeLock:
        return CooperativeLock(self)

    def close(self, force: bool = False) -> None:
        del force  # deterministic teardown is always forceful and I/O-free
        with self._lock:
            self._dead = True
            for task in list(self._tasks.values()):
                task.event.set()
            for task in self._runnable:
                task.event.set()
            self._runnable.clear()
        for thread in self._threads:
            thread.join(timeout=10.0)
        self._threads.clear()
