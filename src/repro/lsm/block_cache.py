"""LRU block cache with a high-priority pool for filter/index blocks.

Reproduces the RocksDB caching behaviour the paper configures (§4
footnotes): ``cache_index_and_filter_blocks=true`` puts metadata blocks in
the same cache as data blocks;
``cache_index_and_filter_blocks_with_high_priority=true`` makes data blocks
evict first; ``pin_l0_filter_and_index_blocks_in_cache=true`` exempts L0
metadata from eviction entirely.

Implementation: two LRU pools (low = data, high = filter/index) sharing one
byte budget, plus a pinned set that is charged but never evicted.  Eviction
drains the low-priority pool before touching the high-priority one.  The
cache is shared between foreground queries and background compaction
reads, so every operation runs under one internal mutex — LRU reordering
and the ``_used`` byte accounting are not safe to interleave.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Hashable

__all__ = ["BlockCache"]


class BlockCache:
    """Capacity-bounded block cache keyed by ``(file, offset)`` tuples."""

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity_bytes}")
        self.capacity_bytes = capacity_bytes
        self._lock = threading.Lock()
        self._low: OrderedDict[Hashable, bytes] = OrderedDict()
        self._high: OrderedDict[Hashable, bytes] = OrderedDict()
        self._pinned: dict[Hashable, bytes] = {}
        self._used = 0
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def get(self, key: Hashable) -> bytes | None:
        """Return the cached block or None; refreshes LRU position."""
        with self._lock:
            for pool in (self._pinned,):
                if key in pool:
                    self.hits += 1
                    return pool[key]
            for pool in (self._high, self._low):
                if key in pool:
                    pool.move_to_end(key)
                    self.hits += 1
                    return pool[key]
            self.misses += 1
            return None

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------
    def put(
        self,
        key: Hashable,
        block: bytes,
        high_priority: bool = False,
        pinned: bool = False,
    ) -> None:
        """Insert a block, evicting LRU data blocks first if needed.

        Oversized blocks (bigger than the whole cache) are silently not
        cached — matching RocksDB's strict-capacity-off behaviour closely
        enough for measurement purposes.
        """
        if self.capacity_bytes == 0 or len(block) > self.capacity_bytes:
            return
        with self._lock:
            self._remove_locked(key)
            if pinned:
                self._pinned[key] = block
            elif high_priority:
                self._high[key] = block
            else:
                self._low[key] = block
            self._used += len(block)
            self._evict_to_capacity()

    def _evict_to_capacity(self) -> None:
        while self._used > self.capacity_bytes and self._low:
            _, evicted = self._low.popitem(last=False)
            self._used -= len(evicted)
        while self._used > self.capacity_bytes and self._high:
            _, evicted = self._high.popitem(last=False)
            self._used -= len(evicted)
        # Pinned blocks are never evicted; they may keep usage above
        # capacity, exactly like RocksDB's pinning.

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def _remove_locked(self, key: Hashable) -> None:
        for pool in (self._low, self._high, self._pinned):
            block = pool.pop(key, None)
            if block is not None:
                self._used -= len(block)
                return

    def remove(self, key: Hashable) -> None:
        """Drop one entry if present (any pool)."""
        with self._lock:
            self._remove_locked(key)

    def remove_file(self, file_name: str) -> None:
        """Drop every entry belonging to ``file_name`` (post-compaction)."""
        with self._lock:
            for pool in (self._low, self._high, self._pinned):
                stale = [key for key in pool if key[0] == file_name]
                for key in stale:
                    self._used -= len(pool.pop(key))

    @property
    def used_bytes(self) -> int:
        """Bytes currently charged to the cache."""
        with self._lock:
            return self._used

    def __len__(self) -> int:
        with self._lock:
            return len(self._low) + len(self._high) + len(self._pinned)
