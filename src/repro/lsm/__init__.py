"""LSM-tree key-value store substrate (the paper's RocksDB stand-in).

Public surface: :class:`~repro.lsm.db.DB` and
:class:`~repro.lsm.options.DBOptions`; the building blocks (memtable, SST
tables, block cache, compaction, iterators, stats, storage environment) are
importable individually for tests and benchmarks.
"""

from repro.lsm.block_cache import BlockCache
from repro.lsm.db import DB, HealthReport
from repro.lsm.env import DEVICE_PRESETS, DeviceModel, StorageEnv
from repro.lsm.faults import FaultInjectionEnv
from repro.lsm.memtable import MemTable
from repro.lsm.options import DBOptions
from repro.lsm.perf_context import QueryContext
from repro.lsm.repair import RepairOutcome, repair_store
from repro.lsm.scheduler import (
    DeterministicScheduler,
    InlineScheduler,
    ThreadPoolScheduler,
)
from repro.lsm.serving import (
    ServingHealth,
    ServingOptions,
    ServingStats,
    ShardedServer,
)
from repro.lsm.shard import ShardRouter
from repro.lsm.sst_dump import SstSummary, dump_sst, summarize_sst
from repro.lsm.stats import PerfStats, Stopwatch
from repro.lsm.verify import VerificationReport, verify_version
from repro.lsm.write_batch import WriteBatch

__all__ = [
    "BlockCache",
    "DB",
    "DBOptions",
    "DEVICE_PRESETS",
    "DeterministicScheduler",
    "DeviceModel",
    "FaultInjectionEnv",
    "HealthReport",
    "InlineScheduler",
    "MemTable",
    "PerfStats",
    "QueryContext",
    "RepairOutcome",
    "ServingHealth",
    "ServingOptions",
    "ServingStats",
    "ShardRouter",
    "ShardedServer",
    "SstSummary",
    "StorageEnv",
    "Stopwatch",
    "ThreadPoolScheduler",
    "VerificationReport",
    "WriteBatch",
    "dump_sst",
    "repair_store",
    "summarize_sst",
    "verify_version",
]
