"""Sharded batch-serving front-end over N key-range `DB` shards.

The paper positions Rosetta as the filter inside a *serving* key-value
store; this module is the serving layer.  One logical store is
partitioned by key range (:class:`~repro.lsm.shard.ShardRouter`) across
``N`` in-process :class:`~repro.lsm.db.DB` shards, fronted by an async
batch API that **coalesces** concurrent ``get`` / ``multi_get`` /
``range_query`` calls into the store's existing batched read paths:

* every shard owns a request queue and one worker thread;
* point lookups submitted by any number of client threads within one
  *coalescing window* are drained as a single batch and answered with
  **one** :meth:`DB.multi_get` — which already dedups keys, sweeps the
  memtables once, and probes every run's filter with one
  ``may_contain_batch`` per run;
* range queries split at shard boundaries
  (:meth:`ShardRouter.split_range`), run on the shards they touch, and
  reassemble in shard order (shards are contiguous, so concatenation is
  the sorted merge);
* :meth:`ShardedServer.range_iter` streams instead of queueing: it walks
  the shards in key order through the genuinely-lazy :meth:`DB.range_iter`,
  yielding each entry as the underlying merge advances.

Filters are immutable once built and every read pins a refcounted
superversion, so batched probes fan out across client and worker threads
with zero locking in the read path — the only serialization points are
the per-shard queue (a condition variable held for queue surgery only)
and each shard's own write lock.

Fault tolerance — the serving layer fails *fast and typed*, never
silently and never by hanging:

* **Deadlines.** Every read can carry a deadline (``deadline_s=`` on the
  submit, or ``ServingOptions.default_deadline_s``).  Deadlines are
  enforced at dequeue — an expired request fails with
  :class:`~repro.errors.DeadlineExceededError` instead of occupying a
  batch — and the coalescing linger never waits past the earliest
  deadline in the queue (minus a small execution margin), so a request
  with a tight deadline is served instead of timed out by its own batch
  window.  A submitter blocked on a full queue gives up when its
  deadline passes.
* **Load shedding.** ``ServingOptions.queue_policy = "shed"`` rejects
  submits over ``max_queue_depth`` immediately with
  :class:`~repro.errors.QueueFullError` (counted in
  ``ServingStats.sheds``) instead of blocking the submitter — bounded
  queues with fast rejection instead of unbounded client-side waits.
* **Circuit breaker + supervisor.** Each shard carries a breaker
  (``closed`` → ``open`` → ``half_open`` → ``closed``; terminally
  ``failed``).  A degraded-mode flip of the shard DB (background write
  error) or a drain-worker crash trips it ``open``: writes fail fast
  with :class:`~repro.errors.ShardUnavailableError` while reads keep
  passing through as long as the DB allows (degraded mode is read-only,
  not read-never).  A supervisor thread retries :meth:`DB.resume` with
  capped exponential backoff through ``half_open`` back to ``closed``,
  and restarts crashed drain workers up to
  ``ServingOptions.max_worker_restarts`` times — after which the shard
  is permanently ``failed`` and every request fails fast.
* **Crash containment.** A crashed drain worker marks the shard failed,
  fails every queued and in-flight request with
  :class:`~repro.errors.WorkerCrashedError`, and wakes all submitters
  blocked on the full queue — no future is ever stranded on a dead
  worker.  :meth:`ShardedServer.close` detects a worker that outlives
  its join timeout, fails that shard's pending futures with
  :class:`~repro.errors.ClosedStoreError`, and reports the leak.

Everything is observable: per-shard + aggregate :class:`ServingStats`
counters (batches, coalescing, sheds, deadline misses, breaker trips /
recoveries, worker crashes / restarts, queue-depth high-water), and
:meth:`ShardedServer.health` reports every shard's
:class:`~repro.lsm.db.HealthReport` plus live queue depths, breaker
states, and worker liveness.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future, InvalidStateError
from dataclasses import dataclass, fields, replace
from pathlib import Path
from typing import Callable, Iterable, Iterator

from repro.errors import (
    ClosedStoreError,
    DeadlineExceededError,
    InvalidOptionsError,
    QueueFullError,
    ReadOnlyStoreError,
    ShardUnavailableError,
    WorkerCrashedError,
)
from repro.lsm.db import DB, HealthReport
from repro.lsm.options import DBOptions
from repro.lsm.shard import ShardRouter
from repro.lsm.stats import PerfStats

__all__ = [
    "ServingHealth",
    "ServingOptions",
    "ServingStats",
    "ShardedServer",
]

#: How much before the earliest queued deadline the coalescing linger
#: stops, leaving the batch time to actually execute.  Without the
#: margin a lone request whose deadline falls inside the window would be
#: drained exactly at its deadline — expired by construction.
_DEADLINE_LINGER_MARGIN_S = 0.001


@dataclass
class ServingOptions:
    """Tuning knobs for :class:`ShardedServer`."""

    #: Number of key-range shards (each one independent ``DB``).
    num_shards: int = 4

    #: Explicit interior shard boundaries (``num_shards - 1`` strictly
    #: increasing keys), or None for equal-width slices of the domain.
    shard_boundaries: tuple[int, ...] | None = None

    #: How long a shard worker lingers after the first queued request to
    #: let concurrent callers join the batch.  0 disables coalescing
    #: waits (the worker still batches whatever is already queued).
    coalescing_window_s: float = 0.0002

    #: Ceiling on point keys resolved by one batched ``multi_get``.
    max_batch_keys: int = 512

    #: Ceiling on requests drained into one batch.
    max_batch_requests: int = 256

    #: Queue-depth ceiling per shard (see :attr:`queue_policy`).
    max_queue_depth: int = 4096

    #: What happens to a submit finding the queue at ``max_queue_depth``:
    #: ``"block"`` waits for the worker to drain (bounded by the
    #: request's deadline, if any); ``"shed"`` rejects immediately with
    #: :class:`~repro.errors.QueueFullError`.
    queue_policy: str = "block"

    #: Deadline applied to every read submitted without an explicit
    #: ``deadline_s``; None means no deadline (requests wait forever).
    default_deadline_s: float | None = None

    #: Run the per-shard circuit breaker + supervisor thread.  Off, the
    #: serving layer behaves like the pre-breaker code: degraded shards
    #: leak :class:`~repro.errors.ReadOnlyStoreError` on every write and
    #: crashed workers are never restarted (submits still fail fast with
    #: :class:`~repro.errors.ShardUnavailableError` — crash containment
    #: is a bug fix, not a feature flag).
    breaker_enabled: bool = True

    #: First retry delay after a breaker trips open; doubles per failed
    #: ``DB.resume()`` probe up to :attr:`breaker_backoff_max_s`.
    breaker_backoff_initial_s: float = 0.05

    #: Ceiling on the breaker's exponential probe backoff.
    breaker_backoff_max_s: float = 2.0

    #: How many times the supervisor restarts a crashed drain worker
    #: before declaring the shard permanently ``failed``.
    max_worker_restarts: int = 3

    #: Supervisor tick interval (breaker probes, health polls, worker
    #: liveness checks all run on this cadence).
    supervisor_poll_s: float = 0.02

    #: How long :meth:`ShardedServer.close` waits for each drain worker
    #: to exit before declaring it leaked and failing its futures.
    worker_join_timeout_s: float = 30.0

    def validate(self) -> None:
        """Raise :class:`InvalidOptionsError` on inconsistent settings."""
        if self.num_shards < 1:
            raise InvalidOptionsError("num_shards must be >= 1")
        if self.coalescing_window_s < 0:
            raise InvalidOptionsError("coalescing_window_s must be >= 0")
        if self.max_batch_keys < 1:
            raise InvalidOptionsError("max_batch_keys must be >= 1")
        if self.max_batch_requests < 1:
            raise InvalidOptionsError("max_batch_requests must be >= 1")
        if self.max_queue_depth < 1:
            raise InvalidOptionsError("max_queue_depth must be >= 1")
        if self.queue_policy not in ("block", "shed"):
            raise InvalidOptionsError(
                f"queue_policy must be 'block' or 'shed': {self.queue_policy!r}"
            )
        if self.default_deadline_s is not None and self.default_deadline_s <= 0:
            raise InvalidOptionsError("default_deadline_s must be > 0 or None")
        if self.breaker_backoff_initial_s <= 0:
            raise InvalidOptionsError("breaker_backoff_initial_s must be > 0")
        if self.breaker_backoff_max_s < self.breaker_backoff_initial_s:
            raise InvalidOptionsError(
                "breaker_backoff_max_s must be >= breaker_backoff_initial_s"
            )
        if self.max_worker_restarts < 0:
            raise InvalidOptionsError("max_worker_restarts must be >= 0")
        if self.supervisor_poll_s <= 0:
            raise InvalidOptionsError("supervisor_poll_s must be > 0")
        if self.worker_join_timeout_s <= 0:
            raise InvalidOptionsError("worker_join_timeout_s must be > 0")


@dataclass
class ServingStats:
    """Front-end counters — one instance per shard plus the aggregate.

    ``batches``/``coalesced_batches`` are the coalescing observables: a
    batch is *coalesced* when it resolved point keys from two or more
    distinct requests with one ``multi_get`` — the thing the CI smoke
    check asserts actually happens under concurrent clients.

    The fault-tolerance counters (``sheds``, ``deadline_misses``,
    ``breaker_trips`` / ``breaker_recoveries``, ``worker_crashes`` /
    ``worker_restarts`` / ``worker_leaks``, ``write_rejections``) make
    every fast-failure path visible: nothing is shed, expired, tripped,
    or restarted without a counter moving.
    """

    point_requests: int = 0      # get() calls routed to this shard
    multi_requests: int = 0      # multi_get() sub-requests for this shard
    range_requests: int = 0      # range pieces executed on this shard
    stream_requests: int = 0     # range_iter pieces streamed off this shard
    write_requests: int = 0      # put/delete routed to this shard
    batches: int = 0             # worker dispatches that ran a multi_get
    coalesced_batches: int = 0   # batches serving >= 2 point-bearing requests
    coalesced_requests: int = 0  # requests resolved inside those batches
    batched_keys: int = 0        # point keys resolved through multi_get
    queue_waits: int = 0         # submits that blocked on max_queue_depth
    sheds: int = 0               # submits rejected with QueueFullError
    deadline_misses: int = 0     # requests failed with DeadlineExceededError
    breaker_trips: int = 0       # closed/half_open -> open transitions
    breaker_recoveries: int = 0  # half_open -> closed transitions
    worker_crashes: int = 0      # drain-worker loops that died
    worker_restarts: int = 0     # supervisor worker restarts
    worker_leaks: int = 0        # workers alive past the close join timeout
    write_rejections: int = 0    # writes fast-failed by an open breaker
    max_batch_requests: int = 0  # high-water: requests in one batch
    max_batch_keys: int = 0      # high-water: point keys in one batch
    max_queue_depth: int = 0     # high-water: queued requests

    _MAX_FIELDS = ("max_batch_requests", "max_batch_keys", "max_queue_depth")

    def __post_init__(self) -> None:
        object.__setattr__(self, "_lock", threading.Lock())

    def add(self, **deltas: int) -> None:
        """Atomically add ``deltas`` to the named counters."""
        with self._lock:
            for name, delta in deltas.items():
                setattr(self, name, getattr(self, name) + delta)

    def observe_max(self, name: str, value: int) -> None:
        """Atomically raise a high-water-mark counter."""
        with self._lock:
            if value > getattr(self, name):
                setattr(self, name, value)

    def snapshot(self) -> "ServingStats":
        """Consistent copy of the current counters."""
        with self._lock:
            return ServingStats(
                **{f.name: getattr(self, f.name) for f in fields(self)}
            )

    @classmethod
    def aggregate(cls, parts: Iterable["ServingStats"]) -> "ServingStats":
        """Sum counters across shards (high-water fields take the max)."""
        total = cls()
        for part in parts:
            snap = part.snapshot()
            for f in fields(cls):
                if f.name in cls._MAX_FIELDS:
                    setattr(
                        total, f.name,
                        max(getattr(total, f.name), getattr(snap, f.name)),
                    )
                else:
                    setattr(
                        total, f.name,
                        getattr(total, f.name) + getattr(snap, f.name),
                    )
        return total


@dataclass(frozen=True)
class ServingHealth:
    """Aggregate + per-shard health (``ShardedServer.health()``).

    ``mode`` is ``"degraded"`` as soon as any shard is degraded, any
    breaker is not ``closed``, or any drain worker is down;
    ``queue_depths`` are the live per-shard request-queue lengths (the
    serving layer's own debt gauge, alongside each shard's
    ``pending_immutables``/``level0_runs``).  ``breaker_states`` and
    ``workers_alive`` expose the fault-tolerance machinery per shard.

    ``filters_degraded`` / ``filters_under_attack`` aggregate the shard
    reports' filter-fault gauges, so a fleet operator sees at a glance
    whether any shard is serving unreadable filters or absorbing an
    FP-replay attack; the per-shard reports name the affected runs,
    which identifies the targeted shard.
    """

    mode: str
    shards: tuple[HealthReport, ...]
    queue_depths: tuple[int, ...]
    filters_degraded: int = 0
    filters_under_attack: int = 0
    breaker_states: tuple[str, ...] = ()
    workers_alive: tuple[bool, ...] = ()

    @property
    def ok(self) -> bool:
        """True when every shard is fully healthy and serving."""
        return (
            all(report.ok for report in self.shards)
            and all(state == "closed" for state in self.breaker_states)
            and all(self.workers_alive)
        )

    def summary(self) -> str:
        """One-line human-readable digest."""
        degraded = sum(1 for r in self.shards if r.mode != "healthy")
        line = (
            f"mode={self.mode}; {len(self.shards)} shards "
            f"({degraded} degraded); queues={list(self.queue_depths)}"
        )
        tripped = [
            f"s{index}={state}"
            for index, state in enumerate(self.breaker_states)
            if state != "closed"
        ]
        if tripped:
            line += f"; breakers=[{', '.join(tripped)}]"
        down = [
            index
            for index, alive in enumerate(self.workers_alive)
            if not alive
        ]
        if down:
            line += f"; workers_down={down}"
        if self.filters_under_attack:
            attacked_shards = [
                index
                for index, report in enumerate(self.shards)
                if report.filters_under_attack
            ]
            line += (
                f"; filters_under_attack={self.filters_under_attack} "
                f"(shards {attacked_shards})"
            )
        return line


class _ScatterSink:
    """Gathers the per-shard pieces of one scattered request.

    A request spanning ``k`` shards used to allocate a child ``Future``
    plus a done-callback per shard; on the serving hot path that is pure
    overhead (each ``set_result`` is a condition-variable dance).  The
    sink replaces all of it with one lock, a countdown, and a single
    master future: each shard worker deposits its piece at its position
    and the last one to arrive combines and resolves.  The first shard
    failure wins and resolves the master exceptionally; later pieces for
    a failed request are dropped.
    """

    __slots__ = ("future", "_lock", "_parts", "_remaining", "_combine")

    def __init__(
        self, pieces: int, combine: Callable[[list], object]
    ) -> None:
        self.future: Future = Future()
        self._lock = threading.Lock()
        self._parts: list = [None] * pieces
        self._remaining = pieces
        self._combine = combine

    def deliver(self, position: int, result: object) -> None:
        with self._lock:
            if self._remaining <= 0:
                return  # already failed
            self._parts[position] = result
            self._remaining -= 1
            if self._remaining:
                return
        try:
            self.future.set_result(self._combine(self._parts))
        except BaseException as exc:  # noqa: BLE001 - routed to caller
            try:
                self.future.set_exception(exc)
            except InvalidStateError:
                pass

    def fail(self, exc: BaseException) -> None:
        with self._lock:
            if self._remaining <= 0:
                return
            self._remaining = 0
        try:
            self.future.set_exception(exc)
        except InvalidStateError:
            pass


class _Request:
    """One queued unit of read work for a shard worker.

    A request either owns its ``future`` outright or is one piece of a
    scattered call, in which case it carries its :class:`_ScatterSink`
    and position instead (no per-piece future is allocated).
    ``deadline`` is an absolute ``time.monotonic()`` instant or None;
    the worker checks it at dequeue and the blocking submit path checks
    it while waiting on a full queue.

    ``resolve``/``fail`` tolerate an already-settled future: the close
    path fails the futures of a wedged worker's in-flight batch, and the
    worker — if it ever unwedges — must not crash on the leftovers.
    """

    __slots__ = (
        "kind", "keys", "low", "high", "future", "sink", "position",
        "deadline",
    )

    def __init__(
        self,
        kind: str,
        keys: list[int] | None = None,
        low: int = 0,
        high: int = 0,
        sink: _ScatterSink | None = None,
        position: int = 0,
        deadline: float | None = None,
    ) -> None:
        self.kind = kind  # "point" | "multi" | "range"
        self.keys = keys if keys is not None else []
        self.low = low
        self.high = high
        self.sink = sink
        self.position = position
        self.deadline = deadline
        self.future: Future | None = Future() if sink is None else None

    def expired(self, now: float) -> bool:
        return self.deadline is not None and now > self.deadline

    def resolve(self, result: object) -> None:
        if self.sink is not None:
            self.sink.deliver(self.position, result)
        else:
            try:
                self.future.set_result(result)
            except InvalidStateError:
                pass  # already failed by the close/crash path

    def fail(self, exc: BaseException) -> None:
        if self.sink is not None:
            self.sink.fail(exc)
        elif not self.future.done():
            try:
                self.future.set_exception(exc)
            except InvalidStateError:
                pass


class _Shard:
    """One key-range shard: a ``DB``, a request queue, a worker thread.

    Two locks, never held together:

    * ``_cond`` (a condition variable) guards queue surgery, the closed
      flag, the worker-death flag, the in-flight batch, and the
      injected-fault hook; all actual read work runs outside it on the
      worker thread, against the DB's lock-free superversion-pinned
      read path.
    * ``_breaker_lock`` guards the circuit-breaker state machine
      (state / reason / backoff / next-probe instant), the worker
      restart budget, and the worker thread handle (rebound on
      restart).
    """

    def __init__(
        self,
        index: int,
        db: DB,
        options: ServingOptions,
        stats: ServingStats,
    ) -> None:
        self.index = index
        self.db = db
        self.options = options
        self.stats = stats
        self._cond = threading.Condition()
        self._queue: deque[_Request] = deque()
        # Earliest deadline among queued requests (None when no queued
        # request carries one), maintained O(1) at submit so the linger
        # loop never rescans the queue; re-derived after each drain.
        self._queue_earliest: float | None = None
        self._inflight: list[_Request] = []
        self._closed = False
        self._worker_dead = False
        self._fault_to_inject: BaseException | None = None
        self._breaker_lock = threading.Lock()
        self._breaker_state = "closed"  # closed | open | half_open | failed
        self._breaker_reason: str | None = None
        self._backoff_s = options.breaker_backoff_initial_s
        self._next_probe_at = 0.0
        self._worker_restarts = 0
        self._thread = self._spawn_worker()
        self._thread.start()

    def _spawn_worker(self) -> threading.Thread:
        return threading.Thread(
            target=self._serve_loop,
            name=f"serving-shard-{self.index}",
            daemon=True,
        )

    # -- client side ----------------------------------------------------
    def submit(self, request: _Request) -> None:
        """Queue a read, applying the queue policy and the deadline.

        ``block`` waits for the worker to drain below ``max_queue_depth``
        (bounded by the request's deadline); ``shed`` raises
        :class:`QueueFullError` immediately.  A dead worker fails the
        submit fast — nothing may queue behind a worker that will never
        drain it.
        """
        opts = self.options
        with self._cond:
            self._check_accepting_locked()
            if len(self._queue) >= opts.max_queue_depth:
                if opts.queue_policy == "shed":
                    self.stats.add(sheds=1)
                    raise QueueFullError(
                        f"shard {self.index} queue at max_queue_depth="
                        f"{opts.max_queue_depth}; request shed"
                    )
                self.stats.add(queue_waits=1)
                while (
                    len(self._queue) >= opts.max_queue_depth
                    and not self._closed
                    and not self._worker_dead
                ):
                    timeout = None
                    if request.deadline is not None:
                        timeout = request.deadline - time.monotonic()
                        if timeout <= 0:
                            self.stats.add(deadline_misses=1)
                            raise DeadlineExceededError(
                                f"shard {self.index}: deadline expired "
                                f"while blocked on a full queue"
                            )
                    self._cond.wait(timeout)
                self._check_accepting_locked()
            self._queue.append(request)
            if request.deadline is not None and (
                self._queue_earliest is None
                or request.deadline < self._queue_earliest
            ):
                self._queue_earliest = request.deadline
            self.stats.observe_max("max_queue_depth", len(self._queue))
            self._cond.notify_all()

    def _check_accepting_locked(self) -> None:
        """Raise if the shard can no longer accept requests (_cond held)."""
        if self._closed:
            raise ClosedStoreError("serving layer is closed")
        if self._worker_dead:
            raise ShardUnavailableError(
                f"shard {self.index} drain worker is down"
                + (
                    ""
                    if self.options.breaker_enabled
                    else " (no supervisor to restart it)"
                )
            )

    def queue_depth(self) -> int:
        with self._cond:
            return len(self._queue)

    def breaker_state(self) -> str:
        with self._breaker_lock:
            return self._breaker_state

    def worker_alive(self) -> bool:
        with self._cond:
            if self._worker_dead:
                return False
        with self._breaker_lock:
            thread = self._thread
        return thread.is_alive()

    # -- write gate -----------------------------------------------------
    def guarded_write(self, write: Callable[[], None]) -> None:
        """Run a write unless the breaker fast-fails it.

        While ``open`` / ``half_open`` / ``failed``, writes are rejected
        without touching the DB (:class:`ShardUnavailableError`, counted
        in ``write_rejections``).  A write that finds the DB degraded
        trips the breaker and surfaces as :class:`ShardUnavailableError`
        (chained from the underlying
        :class:`~repro.errors.ReadOnlyStoreError`) so the caller-visible
        type is uniform from the first failure on.
        """
        with self._breaker_lock:
            state = self._breaker_state
            reason = self._breaker_reason
        if state != "closed":
            self.stats.add(write_rejections=1)
            raise ShardUnavailableError(
                f"shard {self.index} breaker {state}"
                + (f" ({reason})" if reason else "")
            )
        try:
            write()
        except ReadOnlyStoreError as exc:
            if not self.options.breaker_enabled:
                raise
            self._trip(f"degraded shard DB: {exc}")
            raise ShardUnavailableError(
                f"shard {self.index} tripped open: {exc}"
            ) from exc

    # -- breaker state machine ------------------------------------------
    def _trip(self, reason: str) -> None:
        """closed/half_open -> open (idempotent while already open)."""
        with self._breaker_lock:
            if self._breaker_state == "failed":
                return
            if self._breaker_state == "open":
                self._breaker_reason = reason
                return
            self._breaker_state = "open"
            self._breaker_reason = reason
            self._backoff_s = self.options.breaker_backoff_initial_s
            self._next_probe_at = time.monotonic() + self._backoff_s
        self.stats.add(breaker_trips=1)

    def supervise(self) -> None:
        """One supervisor tick: restart a dead worker, probe the breaker.

        Called only from the server's supervisor thread (single caller),
        and only when ``breaker_enabled``.
        """
        self._maybe_restart_worker()
        self._maybe_probe_breaker()
        with self._breaker_lock:
            closed = self._breaker_state == "closed"
        if closed and self.db.background_error is not None:
            # Degraded-mode flip observed by polling rather than by a
            # failing write: trip so writes fail fast and probing starts.
            self._trip(f"degraded shard DB: {self.db.background_error}")

    def _maybe_restart_worker(self) -> None:
        with self._cond:
            dead = self._worker_dead and not self._closed
        if not dead:
            return
        thread: threading.Thread | None = None
        with self._breaker_lock:
            if self._breaker_state == "failed":
                return
            if self._worker_restarts >= self.options.max_worker_restarts:
                self._breaker_state = "failed"
                self._breaker_reason = (
                    f"worker crashed {self._worker_restarts + 1} times; "
                    f"restart budget ({self.options.max_worker_restarts}) "
                    f"exhausted"
                )
                return
            self._worker_restarts += 1
            self._thread = self._spawn_worker()
            thread = self._thread
        with self._cond:
            self._worker_dead = False
            self._cond.notify_all()
        thread.start()
        self.stats.add(worker_restarts=1)

    def _maybe_probe_breaker(self) -> None:
        now = time.monotonic()
        with self._breaker_lock:
            if self._breaker_state != "open" or now < self._next_probe_at:
                return
            self._breaker_state = "half_open"
        try:
            recovered = self.db.resume()
        except BaseException:  # noqa: BLE001 - a probe must never kill us
            recovered = False
        with self._cond:
            worker_ok = not self._worker_dead
        with self._breaker_lock:
            if self._breaker_state != "half_open":
                return  # a concurrent trip/close won; keep its verdict
            if recovered and worker_ok:
                self._breaker_state = "closed"
                self._breaker_reason = None
                self._backoff_s = self.options.breaker_backoff_initial_s
            else:
                self._breaker_state = "open"
                self._backoff_s = min(
                    self._backoff_s * 2, self.options.breaker_backoff_max_s
                )
                self._next_probe_at = time.monotonic() + self._backoff_s
        if recovered and worker_ok:
            self.stats.add(breaker_recoveries=1)

    # -- test / chaos hook ----------------------------------------------
    def inject_worker_fault(self, exc: BaseException) -> None:
        """Make the drain worker raise ``exc`` at its next dequeue.

        The chaos harness's (and the regression tests') way to model a
        drain-worker bug: the exception escapes the serve loop exactly
        like an unexpected crash would.
        """
        with self._cond:
            self._fault_to_inject = exc
            self._cond.notify_all()

    # -- worker side ----------------------------------------------------
    def _serve_loop(self) -> None:
        try:
            while True:
                batch = self._next_batch()
                if batch is None:
                    return
                if batch:
                    self._execute(batch)
        except BaseException as exc:  # noqa: BLE001 - crash containment
            self._on_worker_crash(exc)

    def _next_batch(self) -> list[_Request] | None:
        """Drain one batch, lingering up to the coalescing window.

        The linger never waits past the earliest deadline in the queue
        (minus a small execution margin), and requests whose deadline
        already passed are failed fast at drain time instead of joining
        the batch.  Returns None only at shutdown with an empty queue —
        a non-empty queue at shutdown is still drained so no future is
        left dangling — and an empty list when everything drained had
        expired (the caller just loops).
        """
        opts = self.options
        expired: list[_Request] = []
        with self._cond:
            while (
                not self._queue
                and not self._closed
                and self._fault_to_inject is None
            ):
                self._cond.wait()
            if self._fault_to_inject is not None:
                fault = self._fault_to_inject
                self._fault_to_inject = None
                raise fault
            if not self._queue:
                return None  # closed and drained
            if opts.coalescing_window_s > 0 and not self._closed:
                linger_until = time.monotonic() + opts.coalescing_window_s
                while len(self._queue) < opts.max_batch_requests:
                    limit = linger_until
                    if self._queue_earliest is not None:
                        limit = min(
                            limit,
                            self._queue_earliest
                            - _DEADLINE_LINGER_MARGIN_S,
                        )
                    remaining = limit - time.monotonic()
                    if remaining <= 0 or self._closed:
                        break
                    self._cond.wait(remaining)
            batch: list[_Request] = []
            keys = 0
            now = time.monotonic()
            while self._queue and len(batch) < opts.max_batch_requests:
                request = self._queue[0]
                if request.expired(now):
                    expired.append(self._queue.popleft())
                    continue
                weight = len(request.keys)
                if batch and keys + weight > opts.max_batch_keys:
                    break
                batch.append(self._queue.popleft())
                keys += weight
            self._queue_earliest = min(
                (
                    r.deadline
                    for r in self._queue
                    if r.deadline is not None
                ),
                default=None,
            )
            self._inflight = batch
            self._cond.notify_all()  # wake submitters blocked on depth
        if expired:
            self.stats.add(deadline_misses=len(expired))
            for request in expired:
                request.fail(
                    DeadlineExceededError(
                        f"shard {self.index}: deadline expired in queue"
                    )
                )
        return batch

    def _execute(self, batch: list[_Request]) -> None:
        """Resolve one drained batch against the shard's DB.

        All point-bearing requests share one ``multi_get`` (the
        coalescing payoff); range requests then run in arrival order.
        """
        try:
            point_requests = [
                r for r in batch if r.kind in ("point", "multi")
            ]
            point_keys = [key for r in point_requests for key in r.keys]
            if point_keys:
                self.stats.add(batches=1, batched_keys=len(point_keys))
                self.stats.observe_max("max_batch_requests", len(batch))
                self.stats.observe_max("max_batch_keys", len(point_keys))
                if len(point_requests) >= 2:
                    self.stats.add(
                        coalesced_batches=1,
                        coalesced_requests=len(point_requests),
                    )
                try:
                    values = self.db.multi_get(point_keys)
                except BaseException as exc:  # noqa: BLE001 - to callers
                    for request in point_requests:
                        request.fail(exc)
                else:
                    for request in point_requests:
                        if request.kind == "point":
                            request.resolve(values[request.keys[0]])
                        else:
                            request.resolve(
                                {key: values[key] for key in request.keys}
                            )
            for request in batch:
                if request.kind != "range":
                    continue
                try:
                    request.resolve(
                        self.db.range_query(request.low, request.high)
                    )
                except BaseException as exc:  # noqa: BLE001 - to callers
                    request.fail(exc)
        finally:
            with self._cond:
                self._inflight = []

    def _on_worker_crash(self, exc: BaseException) -> None:
        """Contain a dead drain worker: strand no future, wake everyone.

        Marks the shard failed *before* notifying, so submitters blocked
        on the full queue wake into :class:`ShardUnavailableError`
        instead of waiting forever; every queued and in-flight request
        fails with :class:`WorkerCrashedError`; the breaker trips so the
        supervisor (when enabled) restarts the worker.
        """
        victims: list[_Request] = []
        with self._cond:
            self._worker_dead = True
            victims.extend(self._inflight)
            self._inflight = []
            victims.extend(self._queue)
            self._queue.clear()
            self._queue_earliest = None
            self._cond.notify_all()
        self.stats.add(worker_crashes=1)
        failure = WorkerCrashedError(
            f"shard {self.index} drain worker crashed: "
            f"{type(exc).__name__}: {exc}"
        )
        for request in victims:
            request.fail(failure)
        if self.options.breaker_enabled:
            self._trip(
                f"worker crash: {type(exc).__name__}: {exc}"
            )

    def close(self) -> bool:
        """Stop the worker (drains the queue first), then the DB.

        Returns True when the worker leaked — still alive after
        ``worker_join_timeout_s`` — in which case its in-flight futures
        are failed with :class:`ClosedStoreError` rather than silently
        abandoned, and ``worker_leaks`` is counted.
        """
        with self._cond:
            self._closed = True
            self._cond.notify_all()
        with self._breaker_lock:
            thread = self._thread
        thread.join(timeout=self.options.worker_join_timeout_s)
        leaked = thread.is_alive()
        victims: list[_Request] = []
        with self._cond:
            victims.extend(self._queue)
            self._queue.clear()
            self._queue_earliest = None
            if leaked:
                # The wedged worker owns these; it may still settle them,
                # but the caller must not wait on it — fail them now
                # (resolve/fail tolerate the race on both sides).
                victims.extend(self._inflight)
                self._inflight = []
        message = "serving layer closed" + (
            " with a stuck worker" if leaked else ""
        )
        for request in victims:
            request.fail(ClosedStoreError(message))
        if leaked:
            self.stats.add(worker_leaks=1)
        self.db.close()
        return leaked


class ShardedServer:
    """A key-range sharded serving layer over N in-process DB shards.

    Examples
    --------
    >>> from repro.lsm import DBOptions
    >>> from repro.lsm.serving import ServingOptions, ShardedServer
    >>> server = ShardedServer(
    ...     "/tmp/example-serving",
    ...     DBOptions(key_bits=32),
    ...     ServingOptions(num_shards=2),
    ... )
    >>> server.put(42, b"value")
    >>> server.get(42)
    b'value'
    >>> server.range_query(40, 50)
    [(42, b'value')]
    >>> server.close()
    []

    The ``*_async`` variants return :class:`concurrent.futures.Future`
    so a client can keep many requests in flight — which is exactly what
    feeds the coalescing window.  Every read accepts ``deadline_s``
    (relative seconds; ``ServingOptions.default_deadline_s`` when
    omitted).
    """

    def __init__(
        self,
        path: str,
        db_options: DBOptions | None = None,
        serving: ServingOptions | None = None,
    ) -> None:
        self.serving = serving if serving is not None else ServingOptions()
        self.serving.validate()
        base = db_options if db_options is not None else DBOptions()
        base.validate()
        self.router = ShardRouter(
            base.key_bits,
            self.serving.num_shards,
            self.serving.shard_boundaries,
        )
        root = Path(path)
        root.mkdir(parents=True, exist_ok=True)
        self._closed = False
        self._leaked_workers: list[int] = []
        self._shards: list[_Shard] = []
        self._stop_supervisor = threading.Event()
        self._supervisor: threading.Thread | None = None
        try:
            for index in range(self.serving.num_shards):
                db = DB(str(root / f"shard_{index:03d}"), replace(base))
                self._shards.append(
                    _Shard(index, db, self.serving, ServingStats())
                )
        except BaseException:
            for shard in self._shards:
                shard.close()
            raise
        if self.serving.breaker_enabled:
            self._supervisor = threading.Thread(
                target=self._supervise_loop,
                name="serving-supervisor",
                daemon=True,
            )
            self._supervisor.start()

    # ------------------------------------------------------------------
    # Deadline plumbing
    # ------------------------------------------------------------------
    def _resolve_deadline(self, deadline_s: float | None) -> float | None:
        """Relative caller deadline -> absolute monotonic instant."""
        effective = (
            deadline_s
            if deadline_s is not None
            else self.serving.default_deadline_s
        )
        if effective is None:
            return None
        if effective <= 0:
            raise InvalidOptionsError(
                f"deadline_s must be > 0: {effective}"
            )
        return time.monotonic() + effective

    # ------------------------------------------------------------------
    # Point reads
    # ------------------------------------------------------------------
    def get_async(self, key: int, deadline_s: float | None = None) -> Future:
        """Async point lookup; the future resolves to ``bytes | None``."""
        self._check_open()
        deadline = self._resolve_deadline(deadline_s)
        shard = self._shards[self.router.shard_of(key)]
        shard.stats.add(point_requests=1)
        request = _Request("point", [int(key)], deadline=deadline)
        shard.submit(request)
        return request.future

    def get(self, key: int, deadline_s: float | None = None) -> bytes | None:
        """Blocking point lookup through the batched front-end."""
        return self.get_async(key, deadline_s).result()

    def multi_get_async(
        self, keys: Iterable[int], deadline_s: float | None = None
    ) -> Future:
        """Async batched lookup; resolves to ``{key: bytes | None}``.

        Keys are split by owning shard; each shard answers its group with
        one (possibly further coalesced) ``multi_get``.
        """
        self._check_open()
        deadline = self._resolve_deadline(deadline_s)
        key_list = [int(key) for key in keys]
        if not key_list:
            done: Future = Future()
            done.set_result({})
            return done
        groups = self.router.group_keys(key_list)
        if len(groups) == 1:
            # Fast path: every key lives on one shard, so that shard's
            # multi answer (keyed by all requested keys) IS the answer.
            ((shard_index, group),) = groups.items()
            shard = self._shards[shard_index]
            shard.stats.add(multi_requests=1)
            request = _Request("multi", group, deadline=deadline)
            shard.submit(request)
            return request.future

        def combine(parts: list) -> dict[int, bytes | None]:
            merged: dict[int, bytes | None] = {}
            for part in parts:
                merged.update(part)
            return {key: merged[key] for key in key_list}

        sink = _ScatterSink(len(groups), combine)
        for position, (shard_index, group) in enumerate(groups.items()):
            shard = self._shards[shard_index]
            shard.stats.add(multi_requests=1)
            shard.submit(
                _Request(
                    "multi",
                    group,
                    sink=sink,
                    position=position,
                    deadline=deadline,
                )
            )
        return sink.future

    def multi_get(
        self, keys: Iterable[int], deadline_s: float | None = None
    ) -> dict[int, bytes | None]:
        """Blocking batched lookup through the front-end."""
        return self.multi_get_async(keys, deadline_s).result()

    # ------------------------------------------------------------------
    # Range reads
    # ------------------------------------------------------------------
    def range_query_async(
        self, low: int, high: int, deadline_s: float | None = None
    ) -> Future:
        """Async inclusive range scan; resolves to sorted pairs.

        The range splits at shard boundaries and the shard answers
        concatenate in shard order — no merge needed, shards are
        contiguous.  Inverted ranges raise here, eagerly.
        """
        self._check_open()
        deadline = self._resolve_deadline(deadline_s)
        pieces = self.router.split_range(low, high)
        if len(pieces) == 1:
            shard_index, piece_low, piece_high = pieces[0]
            shard = self._shards[shard_index]
            shard.stats.add(range_requests=1)
            request = _Request(
                "range", low=piece_low, high=piece_high, deadline=deadline
            )
            shard.submit(request)
            return request.future

        def combine(parts: list) -> list[tuple[int, bytes]]:
            merged: list[tuple[int, bytes]] = []
            for part in parts:
                merged.extend(part)
            return merged

        sink = _ScatterSink(len(pieces), combine)
        for position, (shard_index, piece_low, piece_high) in enumerate(
            pieces
        ):
            shard = self._shards[shard_index]
            shard.stats.add(range_requests=1)
            shard.submit(
                _Request(
                    "range",
                    low=piece_low,
                    high=piece_high,
                    sink=sink,
                    position=position,
                    deadline=deadline,
                )
            )
        return sink.future

    def range_query(
        self, low: int, high: int, deadline_s: float | None = None
    ) -> list[tuple[int, bytes]]:
        """Blocking inclusive range scan across shards."""
        return self.range_query_async(low, high, deadline_s).result()

    def range_iter(self, low: int, high: int) -> Iterator[tuple[int, bytes]]:
        """Streaming inclusive range scan across shards.

        Validation is eager (closed server, inverted range); the returned
        generator then walks the overlapping shards in key order through
        each shard DB's genuinely-lazy :meth:`DB.range_iter`, so the
        first entry is yielded before any later shard — or even the rest
        of the current shard — has been read.  Bypasses the request queue
        (and therefore deadlines): a stream holds its shard's
        superversion pinned while the consumer iterates, which must not
        block queued point batches behind it.
        """
        self._check_open()
        pieces = self.router.split_range(low, high)
        for shard_index, _, _ in pieces:
            self._shards[shard_index].stats.add(stream_requests=1)
        return self._range_stream(pieces)

    def _range_stream(
        self, pieces: list[tuple[int, int, int]]
    ) -> Iterator[tuple[int, bytes]]:
        for shard_index, piece_low, piece_high in pieces:
            iterator = self._shards[shard_index].db.range_iter(
                piece_low, piece_high
            )
            try:
                yield from iterator
            finally:
                iterator.close()

    # ------------------------------------------------------------------
    # Writes (routed straight to the owning shard's write path,
    # gated by that shard's circuit breaker)
    # ------------------------------------------------------------------
    def put(self, key: int, value: bytes) -> None:
        """Insert or overwrite a key on its owning shard."""
        self._check_open()
        shard = self._shards[self.router.shard_of(key)]
        shard.stats.add(write_requests=1)
        shard.guarded_write(lambda: shard.db.put(key, value))

    def delete(self, key: int) -> None:
        """Delete a key (tombstone) on its owning shard."""
        self._check_open()
        shard = self._shards[self.router.shard_of(key)]
        shard.stats.add(write_requests=1)
        shard.guarded_write(lambda: shard.db.delete(key))

    def put_batch(self, items: Iterable[tuple[int, bytes]]) -> None:
        """Insert many items, grouped per shard."""
        self._check_open()
        for key, value in items:
            self.put(key, value)

    # ------------------------------------------------------------------
    # Supervisor
    # ------------------------------------------------------------------
    def _supervise_loop(self) -> None:
        """Restart dead workers and heal tripped breakers, forever.

        The supervisor is the last line of defense; a fault in one
        shard's tick must not stop it from supervising the others, so
        per-shard errors are contained (they surface through the shard's
        own breaker state, not by killing the supervisor).
        """
        poll = self.serving.supervisor_poll_s
        while not self._stop_supervisor.wait(poll):
            for shard in self._shards:
                try:
                    shard.supervise()
                except BaseException:  # noqa: BLE001 - must keep ticking
                    continue

    # ------------------------------------------------------------------
    # Maintenance / introspection
    # ------------------------------------------------------------------
    @property
    def shards(self) -> tuple[DB, ...]:
        """The underlying per-shard DBs (read-mostly; for tests/tools)."""
        return tuple(shard.db for shard in self._shards)

    @property
    def leaked_workers(self) -> tuple[int, ...]:
        """Shards whose workers outlived the close join timeout."""
        return tuple(self._leaked_workers)

    def flush(self) -> None:
        """Flush every shard (synchronous barrier per shard)."""
        self._check_open()
        for shard in self._shards:
            shard.db.flush()

    def compact(self) -> None:
        """Settle compaction triggers on every shard."""
        self._check_open()
        for shard in self._shards:
            shard.db.compact()

    def wait_idle(self, timeout_s: float = 60.0) -> bool:
        """Wait until no shard has background maintenance pending."""
        self._check_open()
        return all(
            shard.db.wait_idle(timeout_s) for shard in self._shards
        )

    def resume(self) -> bool:
        """Clear degraded mode on every shard; True when all recovered.

        The manual counterpart of the supervisor's automatic probing
        (still useful with ``breaker_enabled=False``).
        """
        self._check_open()
        return all(shard.db.resume() for shard in self._shards)

    def health(self) -> ServingHealth:
        """Aggregate + per-shard health, including live queue depths,
        breaker states, and worker liveness."""
        reports = tuple(shard.db.health() for shard in self._shards)
        breaker_states = tuple(
            shard.breaker_state() for shard in self._shards
        )
        workers_alive = tuple(
            shard.worker_alive() for shard in self._shards
        )
        degraded = (
            any(r.mode != "healthy" for r in reports)
            or any(state != "closed" for state in breaker_states)
            or not all(workers_alive)
        )
        return ServingHealth(
            mode="degraded" if degraded else "healthy",
            shards=reports,
            queue_depths=tuple(
                shard.queue_depth() for shard in self._shards
            ),
            filters_degraded=sum(
                len(r.degraded_filters) for r in reports
            ),
            filters_under_attack=sum(
                r.filters_under_attack for r in reports
            ),
            breaker_states=breaker_states,
            workers_alive=workers_alive,
        )

    def stats(self) -> ServingStats:
        """Aggregate front-end counters across all shards."""
        return ServingStats.aggregate(
            shard.stats for shard in self._shards
        )

    def shard_stats(self) -> tuple[ServingStats, ...]:
        """Per-shard front-end counter snapshots, in shard order."""
        return tuple(shard.stats.snapshot() for shard in self._shards)

    def perf_totals(self) -> PerfStats:
        """Sum of every shard DB's :class:`PerfStats` (one snapshot each)."""
        total = PerfStats()
        for shard in self._shards:
            snap = shard.db.stats.snapshot()
            total.add(
                **{
                    f.name: getattr(snap, f.name)
                    for f in fields(PerfStats)
                    if f.name != "max_jobs_in_flight"
                }
            )
            total.observe_max(
                "max_jobs_in_flight", snap.max_jobs_in_flight
            )
        return total

    def describe(self) -> str:
        """Shard layout plus each shard's tree shape."""
        lines = [self.router.describe()]
        for shard in self._shards:
            lines.append(f"-- shard {shard.index} --")
            lines.append(shard.db.describe())
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> list[int]:
        """Drain every queue, stop the workers, close every shard DB.

        Returns the indexes of shards whose workers leaked (stayed alive
        past ``worker_join_timeout_s``; their pending futures were
        failed with :class:`ClosedStoreError` rather than stranded, and
        each leak is counted in ``ServingStats.worker_leaks``).  Empty
        on a clean shutdown.  Idempotent: repeat calls return the same
        list.
        """
        if self._closed:
            return list(self._leaked_workers)
        self._closed = True
        if self._supervisor is not None:
            self._stop_supervisor.set()
            self._supervisor.join(timeout=5.0)
        leaked = [
            shard.index for shard in self._shards if shard.close()
        ]
        self._leaked_workers = leaked
        return list(leaked)

    def _check_open(self) -> None:
        if self._closed:
            raise ClosedStoreError("operation on a closed serving layer")

    def __enter__(self) -> "ShardedServer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
