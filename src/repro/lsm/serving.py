"""Sharded batch-serving front-end over N key-range `DB` shards.

The paper positions Rosetta as the filter inside a *serving* key-value
store; this module is the serving layer.  One logical store is
partitioned by key range (:class:`~repro.lsm.shard.ShardRouter`) across
``N`` in-process :class:`~repro.lsm.db.DB` shards, fronted by an async
batch API that **coalesces** concurrent ``get`` / ``multi_get`` /
``range_query`` calls into the store's existing batched read paths:

* every shard owns a request queue and one worker thread;
* point lookups submitted by any number of client threads within one
  *coalescing window* are drained as a single batch and answered with
  **one** :meth:`DB.multi_get` — which already dedups keys, sweeps the
  memtables once, and probes every run's filter with one
  ``may_contain_batch`` per run;
* range queries split at shard boundaries
  (:meth:`ShardRouter.split_range`), run on the shards they touch, and
  reassemble in shard order (shards are contiguous, so concatenation is
  the sorted merge);
* :meth:`ShardedServer.range_iter` streams instead of queueing: it walks
  the shards in key order through the genuinely-lazy :meth:`DB.range_iter`,
  yielding each entry as the underlying merge advances.

Filters are immutable once built and every read pins a refcounted
superversion, so batched probes fan out across client and worker threads
with zero locking in the read path — the only serialization points are
the per-shard queue (a condition variable held for queue surgery only)
and each shard's own write lock.

Backpressure composes with the store's: a full request queue
(``ServingOptions.max_queue_depth``) blocks submitters until the worker
drains (counted in ``ServingStats.queue_waits``), and writes routed to a
shard go through that shard's normal slowdown/stop triggers.

Everything is observable: per-shard + aggregate
:class:`ServingStats` counters (batches, coalescing, batch sizes,
queue-depth high-water), and :meth:`ShardedServer.health` reports every
shard's :class:`~repro.lsm.db.HealthReport` plus live queue depths.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, fields, replace
from pathlib import Path
from typing import Callable, Iterable, Iterator

from repro.errors import ClosedStoreError, InvalidOptionsError
from repro.lsm.db import DB, HealthReport
from repro.lsm.options import DBOptions
from repro.lsm.shard import ShardRouter
from repro.lsm.stats import PerfStats

__all__ = [
    "ServingHealth",
    "ServingOptions",
    "ServingStats",
    "ShardedServer",
]


@dataclass
class ServingOptions:
    """Tuning knobs for :class:`ShardedServer`."""

    #: Number of key-range shards (each one independent ``DB``).
    num_shards: int = 4

    #: Explicit interior shard boundaries (``num_shards - 1`` strictly
    #: increasing keys), or None for equal-width slices of the domain.
    shard_boundaries: tuple[int, ...] | None = None

    #: How long a shard worker lingers after the first queued request to
    #: let concurrent callers join the batch.  0 disables coalescing
    #: waits (the worker still batches whatever is already queued).
    coalescing_window_s: float = 0.0002

    #: Ceiling on point keys resolved by one batched ``multi_get``.
    max_batch_keys: int = 512

    #: Ceiling on requests drained into one batch.
    max_batch_requests: int = 256

    #: Queue-depth ceiling per shard; a submitter blocks (serving-side
    #: backpressure) until the worker drains below it.
    max_queue_depth: int = 4096

    def validate(self) -> None:
        """Raise :class:`InvalidOptionsError` on inconsistent settings."""
        if self.num_shards < 1:
            raise InvalidOptionsError("num_shards must be >= 1")
        if self.coalescing_window_s < 0:
            raise InvalidOptionsError("coalescing_window_s must be >= 0")
        if self.max_batch_keys < 1:
            raise InvalidOptionsError("max_batch_keys must be >= 1")
        if self.max_batch_requests < 1:
            raise InvalidOptionsError("max_batch_requests must be >= 1")
        if self.max_queue_depth < 1:
            raise InvalidOptionsError("max_queue_depth must be >= 1")


@dataclass
class ServingStats:
    """Front-end counters — one instance per shard plus the aggregate.

    ``batches``/``coalesced_batches`` are the coalescing observables: a
    batch is *coalesced* when it resolved point keys from two or more
    distinct requests with one ``multi_get`` — the thing the CI smoke
    check asserts actually happens under concurrent clients.
    """

    point_requests: int = 0      # get() calls routed to this shard
    multi_requests: int = 0      # multi_get() sub-requests for this shard
    range_requests: int = 0      # range pieces executed on this shard
    stream_requests: int = 0     # range_iter pieces streamed off this shard
    write_requests: int = 0      # put/delete routed to this shard
    batches: int = 0             # worker dispatches that ran a multi_get
    coalesced_batches: int = 0   # batches serving >= 2 point-bearing requests
    coalesced_requests: int = 0  # requests resolved inside those batches
    batched_keys: int = 0        # point keys resolved through multi_get
    queue_waits: int = 0         # submits that blocked on max_queue_depth
    max_batch_requests: int = 0  # high-water: requests in one batch
    max_batch_keys: int = 0      # high-water: point keys in one batch
    max_queue_depth: int = 0     # high-water: queued requests

    _MAX_FIELDS = ("max_batch_requests", "max_batch_keys", "max_queue_depth")

    def __post_init__(self) -> None:
        object.__setattr__(self, "_lock", threading.Lock())

    def add(self, **deltas: int) -> None:
        """Atomically add ``deltas`` to the named counters."""
        with self._lock:
            for name, delta in deltas.items():
                setattr(self, name, getattr(self, name) + delta)

    def observe_max(self, name: str, value: int) -> None:
        """Atomically raise a high-water-mark counter."""
        with self._lock:
            if value > getattr(self, name):
                setattr(self, name, value)

    def snapshot(self) -> "ServingStats":
        """Consistent copy of the current counters."""
        with self._lock:
            return ServingStats(
                **{f.name: getattr(self, f.name) for f in fields(self)}
            )

    @classmethod
    def aggregate(cls, parts: Iterable["ServingStats"]) -> "ServingStats":
        """Sum counters across shards (high-water fields take the max)."""
        total = cls()
        for part in parts:
            snap = part.snapshot()
            for f in fields(cls):
                if f.name in cls._MAX_FIELDS:
                    setattr(
                        total, f.name,
                        max(getattr(total, f.name), getattr(snap, f.name)),
                    )
                else:
                    setattr(
                        total, f.name,
                        getattr(total, f.name) + getattr(snap, f.name),
                    )
        return total


@dataclass(frozen=True)
class ServingHealth:
    """Aggregate + per-shard health (``ShardedServer.health()``).

    ``mode`` is ``"degraded"`` as soon as any shard is degraded;
    ``queue_depths`` are the live per-shard request-queue lengths (the
    serving layer's own debt gauge, alongside each shard's
    ``pending_immutables``/``level0_runs``).

    ``filters_degraded`` / ``filters_under_attack`` aggregate the shard
    reports' filter-fault gauges, so a fleet operator sees at a glance
    whether any shard is serving unreadable filters or absorbing an
    FP-replay attack; the per-shard reports name the affected runs,
    which identifies the targeted shard.
    """

    mode: str
    shards: tuple[HealthReport, ...]
    queue_depths: tuple[int, ...]
    filters_degraded: int = 0
    filters_under_attack: int = 0

    @property
    def ok(self) -> bool:
        """True when every shard is fully healthy."""
        return all(report.ok for report in self.shards)

    def summary(self) -> str:
        """One-line human-readable digest."""
        degraded = sum(1 for r in self.shards if r.mode != "healthy")
        line = (
            f"mode={self.mode}; {len(self.shards)} shards "
            f"({degraded} degraded); queues={list(self.queue_depths)}"
        )
        if self.filters_under_attack:
            attacked_shards = [
                index
                for index, report in enumerate(self.shards)
                if report.filters_under_attack
            ]
            line += (
                f"; filters_under_attack={self.filters_under_attack} "
                f"(shards {attacked_shards})"
            )
        return line


class _ScatterSink:
    """Gathers the per-shard pieces of one scattered request.

    A request spanning ``k`` shards used to allocate a child ``Future``
    plus a done-callback per shard; on the serving hot path that is pure
    overhead (each ``set_result`` is a condition-variable dance).  The
    sink replaces all of it with one lock, a countdown, and a single
    master future: each shard worker deposits its piece at its position
    and the last one to arrive combines and resolves.  The first shard
    failure wins and resolves the master exceptionally; later pieces for
    a failed request are dropped.
    """

    __slots__ = ("future", "_lock", "_parts", "_remaining", "_combine")

    def __init__(
        self, pieces: int, combine: Callable[[list], object]
    ) -> None:
        self.future: Future = Future()
        self._lock = threading.Lock()
        self._parts: list = [None] * pieces
        self._remaining = pieces
        self._combine = combine

    def deliver(self, position: int, result: object) -> None:
        with self._lock:
            if self._remaining <= 0:
                return  # already failed
            self._parts[position] = result
            self._remaining -= 1
            if self._remaining:
                return
        try:
            self.future.set_result(self._combine(self._parts))
        except BaseException as exc:  # noqa: BLE001 - routed to caller
            self.future.set_exception(exc)

    def fail(self, exc: BaseException) -> None:
        with self._lock:
            if self._remaining <= 0:
                return
            self._remaining = 0
        self.future.set_exception(exc)


class _Request:
    """One queued unit of read work for a shard worker.

    A request either owns its ``future`` outright or is one piece of a
    scattered call, in which case it carries its :class:`_ScatterSink`
    and position instead (no per-piece future is allocated).
    """

    __slots__ = ("kind", "keys", "low", "high", "future", "sink", "position")

    def __init__(
        self,
        kind: str,
        keys: list[int] | None = None,
        low: int = 0,
        high: int = 0,
        sink: _ScatterSink | None = None,
        position: int = 0,
    ) -> None:
        self.kind = kind  # "point" | "multi" | "range"
        self.keys = keys if keys is not None else []
        self.low = low
        self.high = high
        self.sink = sink
        self.position = position
        self.future: Future | None = Future() if sink is None else None

    def resolve(self, result: object) -> None:
        if self.sink is not None:
            self.sink.deliver(self.position, result)
        else:
            self.future.set_result(result)

    def fail(self, exc: BaseException) -> None:
        if self.sink is not None:
            self.sink.fail(exc)
        elif not self.future.done():
            self.future.set_exception(exc)


class _Shard:
    """One key-range shard: a ``DB``, a request queue, a worker thread.

    The condition variable ``_cond`` guards only queue surgery and the
    closed flag; all actual read work (``multi_get``/``range_query``)
    runs outside it on the worker thread, against the DB's lock-free
    superversion-pinned read path.
    """

    def __init__(
        self,
        index: int,
        db: DB,
        options: ServingOptions,
        stats: ServingStats,
    ) -> None:
        self.index = index
        self.db = db
        self.options = options
        self.stats = stats
        self._cond = threading.Condition()
        self._queue: deque[_Request] = deque()
        self._closed = False
        self._thread = threading.Thread(
            target=self._serve_loop,
            name=f"serving-shard-{index}",
            daemon=True,
        )
        self._thread.start()

    # -- client side ----------------------------------------------------
    def submit(self, request: _Request) -> None:
        """Queue a read; blocks while the queue is at its depth ceiling."""
        with self._cond:
            while (
                len(self._queue) >= self.options.max_queue_depth
                and not self._closed
            ):
                self.stats.add(queue_waits=1)
                self._cond.wait(0.05)
            if self._closed:
                raise ClosedStoreError("serving layer is closed")
            self._queue.append(request)
            self.stats.observe_max("max_queue_depth", len(self._queue))
            self._cond.notify_all()

    def queue_depth(self) -> int:
        with self._cond:
            return len(self._queue)

    # -- worker side ----------------------------------------------------
    def _serve_loop(self) -> None:
        while True:
            batch = self._next_batch()
            if batch is None:
                return
            self._execute(batch)

    def _next_batch(self) -> list[_Request] | None:
        """Drain one batch, lingering up to the coalescing window.

        Returns None only at shutdown with an empty queue; a non-empty
        queue at shutdown is still drained so no future is left dangling.
        """
        opts = self.options
        with self._cond:
            while not self._queue and not self._closed:
                self._cond.wait()
            if not self._queue:
                return None  # closed and drained
            if opts.coalescing_window_s > 0 and not self._closed:
                deadline = time.monotonic() + opts.coalescing_window_s
                while len(self._queue) < opts.max_batch_requests:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or self._closed:
                        break
                    self._cond.wait(remaining)
            batch: list[_Request] = []
            keys = 0
            while self._queue and len(batch) < opts.max_batch_requests:
                request = self._queue[0]
                weight = len(request.keys)
                if batch and keys + weight > opts.max_batch_keys:
                    break
                batch.append(self._queue.popleft())
                keys += weight
            self._cond.notify_all()  # wake submitters blocked on depth
        return batch

    def _execute(self, batch: list[_Request]) -> None:
        """Resolve one drained batch against the shard's DB.

        All point-bearing requests share one ``multi_get`` (the
        coalescing payoff); range requests then run in arrival order.
        """
        point_requests = [r for r in batch if r.kind in ("point", "multi")]
        point_keys = [key for r in point_requests for key in r.keys]
        if point_keys:
            self.stats.add(batches=1, batched_keys=len(point_keys))
            self.stats.observe_max("max_batch_requests", len(batch))
            self.stats.observe_max("max_batch_keys", len(point_keys))
            if len(point_requests) >= 2:
                self.stats.add(
                    coalesced_batches=1,
                    coalesced_requests=len(point_requests),
                )
            try:
                values = self.db.multi_get(point_keys)
            except BaseException as exc:  # noqa: BLE001 - routed to callers
                for request in point_requests:
                    request.fail(exc)
            else:
                for request in point_requests:
                    if request.kind == "point":
                        request.resolve(values[request.keys[0]])
                    else:
                        request.resolve(
                            {key: values[key] for key in request.keys}
                        )
        for request in batch:
            if request.kind != "range":
                continue
            try:
                request.resolve(
                    self.db.range_query(request.low, request.high)
                )
            except BaseException as exc:  # noqa: BLE001 - routed to callers
                request.fail(exc)

    def close(self) -> None:
        """Stop the worker (drains the queue first), then the DB."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()
        self._thread.join(timeout=30.0)
        # A wedged worker (should not happen) could leave requests behind;
        # fail them rather than hang their waiters forever.
        with self._cond:
            leftovers = list(self._queue)
            self._queue.clear()
        for request in leftovers:
            request.fail(ClosedStoreError("serving layer closed"))
        self.db.close()


class ShardedServer:
    """A key-range sharded serving layer over N in-process DB shards.

    Examples
    --------
    >>> from repro.lsm import DBOptions
    >>> from repro.lsm.serving import ServingOptions, ShardedServer
    >>> server = ShardedServer(
    ...     "/tmp/example-serving",
    ...     DBOptions(key_bits=32),
    ...     ServingOptions(num_shards=2),
    ... )
    >>> server.put(42, b"value")
    >>> server.get(42)
    b'value'
    >>> server.range_query(40, 50)
    [(42, b'value')]
    >>> server.close()

    The ``*_async`` variants return :class:`concurrent.futures.Future`
    so a client can keep many requests in flight — which is exactly what
    feeds the coalescing window.
    """

    def __init__(
        self,
        path: str,
        db_options: DBOptions | None = None,
        serving: ServingOptions | None = None,
    ) -> None:
        self.serving = serving if serving is not None else ServingOptions()
        self.serving.validate()
        base = db_options if db_options is not None else DBOptions()
        base.validate()
        self.router = ShardRouter(
            base.key_bits,
            self.serving.num_shards,
            self.serving.shard_boundaries,
        )
        root = Path(path)
        root.mkdir(parents=True, exist_ok=True)
        self._closed = False
        self._shards: list[_Shard] = []
        try:
            for index in range(self.serving.num_shards):
                db = DB(str(root / f"shard_{index:03d}"), replace(base))
                self._shards.append(
                    _Shard(index, db, self.serving, ServingStats())
                )
        except BaseException:
            for shard in self._shards:
                shard.close()
            raise

    # ------------------------------------------------------------------
    # Point reads
    # ------------------------------------------------------------------
    def get_async(self, key: int) -> Future:
        """Async point lookup; the future resolves to ``bytes | None``."""
        self._check_open()
        shard = self._shards[self.router.shard_of(key)]
        shard.stats.add(point_requests=1)
        request = _Request("point", [int(key)])
        shard.submit(request)
        return request.future

    def get(self, key: int) -> bytes | None:
        """Blocking point lookup through the batched front-end."""
        return self.get_async(key).result()

    def multi_get_async(self, keys: Iterable[int]) -> Future:
        """Async batched lookup; resolves to ``{key: bytes | None}``.

        Keys are split by owning shard; each shard answers its group with
        one (possibly further coalesced) ``multi_get``.
        """
        self._check_open()
        key_list = [int(key) for key in keys]
        if not key_list:
            done: Future = Future()
            done.set_result({})
            return done
        groups = self.router.group_keys(key_list)
        if len(groups) == 1:
            # Fast path: every key lives on one shard, so that shard's
            # multi answer (keyed by all requested keys) IS the answer.
            ((shard_index, group),) = groups.items()
            shard = self._shards[shard_index]
            shard.stats.add(multi_requests=1)
            request = _Request("multi", group)
            shard.submit(request)
            return request.future

        def combine(parts: list) -> dict[int, bytes | None]:
            merged: dict[int, bytes | None] = {}
            for part in parts:
                merged.update(part)
            return {key: merged[key] for key in key_list}

        sink = _ScatterSink(len(groups), combine)
        for position, (shard_index, group) in enumerate(groups.items()):
            shard = self._shards[shard_index]
            shard.stats.add(multi_requests=1)
            shard.submit(
                _Request("multi", group, sink=sink, position=position)
            )
        return sink.future

    def multi_get(self, keys: Iterable[int]) -> dict[int, bytes | None]:
        """Blocking batched lookup through the front-end."""
        return self.multi_get_async(keys).result()

    # ------------------------------------------------------------------
    # Range reads
    # ------------------------------------------------------------------
    def range_query_async(self, low: int, high: int) -> Future:
        """Async inclusive range scan; resolves to sorted pairs.

        The range splits at shard boundaries and the shard answers
        concatenate in shard order — no merge needed, shards are
        contiguous.  Inverted ranges raise here, eagerly.
        """
        self._check_open()
        pieces = self.router.split_range(low, high)
        if len(pieces) == 1:
            shard_index, piece_low, piece_high = pieces[0]
            shard = self._shards[shard_index]
            shard.stats.add(range_requests=1)
            request = _Request("range", low=piece_low, high=piece_high)
            shard.submit(request)
            return request.future

        def combine(parts: list) -> list[tuple[int, bytes]]:
            merged: list[tuple[int, bytes]] = []
            for part in parts:
                merged.extend(part)
            return merged

        sink = _ScatterSink(len(pieces), combine)
        for position, (shard_index, piece_low, piece_high) in enumerate(
            pieces
        ):
            shard = self._shards[shard_index]
            shard.stats.add(range_requests=1)
            shard.submit(
                _Request(
                    "range",
                    low=piece_low,
                    high=piece_high,
                    sink=sink,
                    position=position,
                )
            )
        return sink.future

    def range_query(self, low: int, high: int) -> list[tuple[int, bytes]]:
        """Blocking inclusive range scan across shards."""
        return self.range_query_async(low, high).result()

    def range_iter(self, low: int, high: int) -> Iterator[tuple[int, bytes]]:
        """Streaming inclusive range scan across shards.

        Validation is eager (closed server, inverted range); the returned
        generator then walks the overlapping shards in key order through
        each shard DB's genuinely-lazy :meth:`DB.range_iter`, so the
        first entry is yielded before any later shard — or even the rest
        of the current shard — has been read.  Bypasses the request queue:
        a stream holds its shard's superversion pinned while the consumer
        iterates, which must not block queued point batches behind it.
        """
        self._check_open()
        pieces = self.router.split_range(low, high)
        for shard_index, _, _ in pieces:
            self._shards[shard_index].stats.add(stream_requests=1)
        return self._range_stream(pieces)

    def _range_stream(
        self, pieces: list[tuple[int, int, int]]
    ) -> Iterator[tuple[int, bytes]]:
        for shard_index, piece_low, piece_high in pieces:
            iterator = self._shards[shard_index].db.range_iter(
                piece_low, piece_high
            )
            try:
                yield from iterator
            finally:
                iterator.close()

    # ------------------------------------------------------------------
    # Writes (routed straight to the owning shard's write path)
    # ------------------------------------------------------------------
    def put(self, key: int, value: bytes) -> None:
        """Insert or overwrite a key on its owning shard."""
        self._check_open()
        shard = self._shards[self.router.shard_of(key)]
        shard.stats.add(write_requests=1)
        shard.db.put(key, value)

    def delete(self, key: int) -> None:
        """Delete a key (tombstone) on its owning shard."""
        self._check_open()
        shard = self._shards[self.router.shard_of(key)]
        shard.stats.add(write_requests=1)
        shard.db.delete(key)

    def put_batch(self, items: Iterable[tuple[int, bytes]]) -> None:
        """Insert many items, grouped per shard."""
        self._check_open()
        for key, value in items:
            self.put(key, value)

    # ------------------------------------------------------------------
    # Maintenance / introspection
    # ------------------------------------------------------------------
    @property
    def shards(self) -> tuple[DB, ...]:
        """The underlying per-shard DBs (read-mostly; for tests/tools)."""
        return tuple(shard.db for shard in self._shards)

    def flush(self) -> None:
        """Flush every shard (synchronous barrier per shard)."""
        self._check_open()
        for shard in self._shards:
            shard.db.flush()

    def compact(self) -> None:
        """Settle compaction triggers on every shard."""
        self._check_open()
        for shard in self._shards:
            shard.db.compact()

    def wait_idle(self, timeout_s: float = 60.0) -> bool:
        """Wait until no shard has background maintenance pending."""
        self._check_open()
        return all(
            shard.db.wait_idle(timeout_s) for shard in self._shards
        )

    def resume(self) -> bool:
        """Clear degraded mode on every shard; True when all recovered."""
        self._check_open()
        return all(shard.db.resume() for shard in self._shards)

    def health(self) -> ServingHealth:
        """Aggregate + per-shard health, including live queue depths."""
        reports = tuple(shard.db.health() for shard in self._shards)
        return ServingHealth(
            mode=(
                "degraded"
                if any(r.mode != "healthy" for r in reports)
                else "healthy"
            ),
            shards=reports,
            queue_depths=tuple(
                shard.queue_depth() for shard in self._shards
            ),
            filters_degraded=sum(
                len(r.degraded_filters) for r in reports
            ),
            filters_under_attack=sum(
                r.filters_under_attack for r in reports
            ),
        )

    def stats(self) -> ServingStats:
        """Aggregate front-end counters across all shards."""
        return ServingStats.aggregate(
            shard.stats for shard in self._shards
        )

    def shard_stats(self) -> tuple[ServingStats, ...]:
        """Per-shard front-end counter snapshots, in shard order."""
        return tuple(shard.stats.snapshot() for shard in self._shards)

    def perf_totals(self) -> PerfStats:
        """Sum of every shard DB's :class:`PerfStats` (one snapshot each)."""
        total = PerfStats()
        for shard in self._shards:
            snap = shard.db.stats.snapshot()
            total.add(
                **{
                    f.name: getattr(snap, f.name)
                    for f in fields(PerfStats)
                    if f.name != "max_jobs_in_flight"
                }
            )
            total.observe_max(
                "max_jobs_in_flight", snap.max_jobs_in_flight
            )
        return total

    def describe(self) -> str:
        """Shard layout plus each shard's tree shape."""
        lines = [self.router.describe()]
        for shard in self._shards:
            lines.append(f"-- shard {shard.index} --")
            lines.append(shard.db.describe())
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Drain every queue, stop the workers, close every shard DB."""
        if self._closed:
            return
        self._closed = True
        for shard in self._shards:
            shard.close()

    def _check_open(self) -> None:
        if self._closed:
            raise ClosedStoreError("operation on a closed serving layer")

    def __enter__(self) -> "ShardedServer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
