"""SST (Static Sorted Table) files — the on-disk runs of the LSM-tree.

Layout (all offsets in the fixed-size footer)::

    [data block 0] ... [data block N-1]
    [index block]      # fence pointers: last key + handle per data block
    [filter block]     # serialized filter envelope (optional)
    [meta block]       # entry count, min/max key
    [footer]           # 3 block handles + magic

One filter instance exists per SST file, exactly as the paper integrates
Rosetta into RocksDB ("A Rosetta instance is created for every SST file");
the filter is serialized into the file and must be fetched + deserialized
before probing (the costs Fig. 5(A2) breaks down).

The reader's block accesses go through the block cache and the storage
environment, so cache priorities and modeled device latency apply to every
path that touches the file.
"""

from __future__ import annotations

import struct
import threading
from bisect import bisect_left
from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterator

from repro.core.hashing import derive_filter_salt
from repro.errors import CorruptionError, FilterBuildError
from repro.filters.base import FilterFactory, KeyFilter, serialize_envelope
from repro.lsm.block_cache import BlockCache
from repro.lsm.env import StorageEnv
from repro.lsm.format import (
    BlockHandle,
    DataBlockBuilder,
    ValueTag,
    decode_data_block,
    decode_index_block,
    encode_index_block,
    sst_file_number,
)
from repro.lsm.options import DBOptions
from repro.lsm.stats import Stopwatch

_FOOTER = struct.Struct("<QQQQQQI")
_MAGIC = 0x524F5345  # "ROSE"

# Parsed data blocks memoized per reader (entry lists are ~10x the work of
# the raw block fetch).  Bounded: a point-lookup storm over one file keeps
# at most this many blocks' decoded entries alive.
_MAX_DECODED_BLOCKS = 16

__all__ = ["SSTWriter", "SSTReader", "SSTMeta"]


@dataclass(frozen=True)
class SSTMeta:
    """Summary metadata of one SST file."""

    name: str
    num_entries: int
    min_key: bytes
    max_key: bytes
    file_size: int

    def overlaps(self, low: bytes, high: bytes) -> bool:
        """Whether the file's key span intersects ``[low, high]``."""
        return self.min_key <= high and self.max_key >= low


class SSTWriter:
    """Builds one SST file from entries added in strictly increasing order."""

    def __init__(
        self,
        env: StorageEnv,
        name: str,
        options: DBOptions,
        filter_factory: FilterFactory | None = None,
        filter_bits_per_key: float | None = None,
    ) -> None:
        self._env = env
        self.name = name
        self._options = options
        self._filter_factory = (
            filter_factory if filter_factory is not None else options.filter_factory
        )
        # Per-file salt: the store seed mixed with this file's allocation
        # number, so every flush/compaction output probes with a hash
        # family an FP-replay attacker has never observed.  Zero (the
        # default seed) keeps filters byte-identical to the unsalted
        # format.
        self._filter_salt = derive_filter_salt(
            options.filter_salt_seed, sst_file_number(name)
        )
        # Optional bits-per-key override for this file's filter (the
        # quarantine rebuild path grants flagged runs extra bits).
        self._filter_bits_per_key = filter_bits_per_key
        self._blocks: list[bytes] = []
        self._index: list[tuple[bytes, int]] = []  # (last key, block length)
        self._builder = DataBlockBuilder(options.block_restart_interval)
        self._last_key: bytes | None = None
        self._min_key: bytes | None = None
        self._num_entries = 0
        self._int_keys: list[int] = []

    def add(self, key: bytes, tag: int, value: bytes) -> None:
        """Append one entry (keys strictly increasing)."""
        if self._last_key is not None and key <= self._last_key:
            raise FilterBuildError("SST keys must be strictly increasing")
        if self._min_key is None:
            self._min_key = key
        self._builder.add(key, tag, value)
        self._last_key = key
        self._num_entries += 1
        self._int_keys.append(int.from_bytes(key, "big"))
        if self._builder.size_estimate() >= self._options.block_size_bytes:
            self._cut_block()

    def _cut_block(self) -> None:
        if self._builder.num_entries == 0:
            return
        block = self._builder.finish()
        self._blocks.append(block)
        self._index.append((self._last_key, len(block)))
        self._builder = DataBlockBuilder(self._options.block_restart_interval)

    @property
    def estimated_file_size(self) -> int:
        """Bytes written so far plus the open block (for size-based cuts)."""
        return sum(len(b) for b in self._blocks) + self._builder.size_estimate()

    @property
    def num_entries(self) -> int:
        """Entries added so far."""
        return self._num_entries

    def finish(self) -> SSTMeta:
        """Seal and persist the file; returns its metadata.

        Filter construction time and serialization time are charged to the
        environment's stats (Fig. 6's construction-cost accounting).
        """
        if self._num_entries == 0:
            raise FilterBuildError("cannot finish an empty SST")
        self._cut_block()
        stats = self._env.stats

        offset = 0
        parts: list[bytes] = []
        index_entries: list[tuple[bytes, BlockHandle]] = []
        for block, (last_key, length) in zip(self._blocks, self._index):
            parts.append(block)
            index_entries.append((last_key, BlockHandle(offset, length)))
            offset += length

        index_block = encode_index_block(index_entries)
        index_handle = BlockHandle(offset, len(index_block))
        parts.append(index_block)
        offset += len(index_block)

        filter_block = b""
        if self._filter_factory is not None:
            with Stopwatch(stats, "filter_construction_ns"):
                filt = self._filter_factory.build(
                    self._int_keys,
                    salt=self._filter_salt,
                    bits_per_key=self._filter_bits_per_key,
                )
            stats.add(filters_built=1)
            with Stopwatch(stats, "serialize_ns"):
                filter_block = serialize_envelope(filt)
        filter_handle = BlockHandle(offset, len(filter_block))
        parts.append(filter_block)
        offset += len(filter_block)

        meta_block = (
            struct.pack("<Q", self._num_entries)
            + struct.pack("<I", len(self._min_key))
            + self._min_key
            + struct.pack("<I", len(self._last_key))
            + self._last_key
        )
        meta_handle = BlockHandle(offset, len(meta_block))
        parts.append(meta_block)
        offset += len(meta_block)

        parts.append(
            _FOOTER.pack(
                index_handle.offset,
                index_handle.size,
                filter_handle.offset,
                filter_handle.size,
                meta_handle.offset,
                meta_handle.size,
                _MAGIC,
            )
        )
        payload = b"".join(parts)
        # sync=True: an SST is only referenced by the manifest once fully
        # durable — the flush/compaction install order depends on it.
        self._env.write_file(self.name, payload, sync=True)
        return SSTMeta(
            name=self.name,
            num_entries=self._num_entries,
            min_key=self._min_key,
            max_key=self._last_key,
            file_size=len(payload),
        )


class SSTReader:
    """Query-side handle to one SST file.

    Block reads go through the block cache (respecting the priority/pinning
    options) and the storage environment (charging modeled device time).
    Filter deserialization goes through the §4 filter dictionary when
    enabled.
    """

    def __init__(
        self,
        env: StorageEnv,
        meta: SSTMeta,
        options: DBOptions,
        cache: BlockCache,
        is_level0: bool = False,
    ) -> None:
        self._env = env
        self.meta = meta
        self._options = options
        self._cache = cache
        self._is_level0 = is_level0
        footer_payload = env.read_block(
            meta.name, meta.file_size - _FOOTER.size, _FOOTER.size
        )
        fields = _FOOTER.unpack(footer_payload)
        if fields[6] != _MAGIC:
            raise CorruptionError(f"bad SST magic in {meta.name}")
        self._index_handle = BlockHandle(fields[0], fields[1])
        self._filter_handle = BlockHandle(fields[2], fields[3])
        self._meta_handle = BlockHandle(fields[4], fields[5])
        index_payload = self._read_metadata_block(self._index_handle)
        self._fence_pointers = decode_index_block(index_payload)
        self._fence_keys = [key for key, _ in self._fence_pointers]
        # offset -> (payload, entries); valid only while the block cache
        # still returns the identical payload object (see _decode_data_block).
        # Shared by foreground queries and background compaction reads.
        self._decoded_lock = threading.Lock()
        self._decoded_blocks: OrderedDict[int, tuple[bytes, list]] = OrderedDict()

    # ------------------------------------------------------------------
    # Block access
    # ------------------------------------------------------------------
    def _read_metadata_block(self, handle: BlockHandle) -> bytes:
        """Read an index/filter block with metadata cache priority."""
        return self._read_block(
            handle,
            high_priority=self._options.cache_index_and_filter_blocks_with_high_priority,
            pinned=(
                self._is_level0
                and self._options.pin_l0_filter_and_index_blocks_in_cache
            ),
            cacheable=self._options.cache_index_and_filter_blocks,
        )

    def _read_block(
        self,
        handle: BlockHandle,
        high_priority: bool = False,
        pinned: bool = False,
        cacheable: bool = True,
    ) -> bytes:
        cache_key = (self.meta.name, handle.offset)
        if cacheable:
            cached = self._cache.get(cache_key)
            if cached is not None:
                self._env.stats.add(block_cache_hits=1)
                return cached
            self._env.stats.add(block_cache_misses=1)
        payload = self._env.read_block(self.meta.name, handle.offset, handle.size)
        if cacheable:
            self._cache.put(cache_key, payload, high_priority, pinned)
        return payload

    def filter_block_bytes(self) -> bytes:
        """Raw serialized filter envelope (empty if the SST has no filter)."""
        if self._filter_handle.size == 0:
            return b""
        return self._read_metadata_block(self._filter_handle)

    # ------------------------------------------------------------------
    # Point lookups
    # ------------------------------------------------------------------
    def get(self, key: bytes) -> tuple[int, bytes] | None:
        """Return ``(tag, value)`` or None; reads at most one data block."""
        if not self.meta.min_key <= key <= self.meta.max_key:
            return None
        block_index = bisect_left(self._fence_keys, key)
        if block_index >= len(self._fence_pointers):
            return None
        entries = self._decode_data_block(block_index)
        position = bisect_left(entries, key, key=lambda e: e[0])
        if position < len(entries) and entries[position][0] == key:
            _, tag, value = entries[position]
            return tag, value
        return None

    def _decode_data_block(self, block_index: int) -> list[tuple[bytes, int, bytes]]:
        """Fetch and parse one data block, memoizing the parsed entries.

        The memo key is the *identity* of the payload ``_read_block``
        returns: a block-cache hit hands back the same bytes object, so the
        varint parse is skipped; a device read (cache miss, eviction, or
        cache disabled) produces a fresh object and re-decodes.  Cache-hit /
        device-read accounting is therefore untouched — only the redundant
        re-parse of an already-resident block is elided.
        """
        _, handle = self._fence_pointers[block_index]
        payload = self._read_block(handle)
        with self._decoded_lock:
            memo = self._decoded_blocks.get(handle.offset)
            if memo is not None and memo[0] is payload:
                self._decoded_blocks.move_to_end(handle.offset)
                return memo[1]
        entries = decode_data_block(payload)
        with self._decoded_lock:
            self._decoded_blocks[handle.offset] = (payload, entries)
            self._decoded_blocks.move_to_end(handle.offset)
            if len(self._decoded_blocks) > _MAX_DECODED_BLOCKS:
                self._decoded_blocks.popitem(last=False)
        return entries

    # ------------------------------------------------------------------
    # Iteration (the two-level iterator)
    # ------------------------------------------------------------------
    def iterate_from(self, key: bytes) -> Iterator[tuple[bytes, int, bytes]]:
        """Yield entries with key >= ``key``, in order, across blocks.

        This is the child-iterator pair of RocksDB's two-level iterator:
        an index cursor choosing data blocks and a block cursor scanning
        entries; each data block is fetched lazily.
        """
        first = bisect_left(self._fence_keys, key)
        for block_index in range(first, len(self._fence_pointers)):
            entries = self._decode_data_block(block_index)
            start = 0
            if block_index == first:
                start = bisect_left(entries, key, key=lambda e: e[0])
            yield from entries[start:]

    def num_data_blocks(self) -> int:
        """Number of data blocks (fence-pointer entries)."""
        return len(self._fence_pointers)

    def fence_keys(self) -> list[bytes]:
        """Last key of each data block, ascending (no I/O).

        Subcompaction planning samples these as key-range cut points so
        slices land on block boundaries.
        """
        return list(self._fence_keys)

    def approximate_bytes_in_range(self, low: bytes, high: bytes) -> int:
        """Estimated on-disk bytes of data blocks touching ``[low, high]``.

        Fence-pointer arithmetic only — no I/O.  Block granular, so small
        ranges round up to one block (RocksDB's GetApproximateSizes has the
        same behaviour).
        """
        if low > high or not self.meta.overlaps(low, high):
            return 0
        first = bisect_left(self._fence_keys, low)
        last = bisect_left(self._fence_keys, high)
        last = min(last, len(self._fence_pointers) - 1)
        return sum(
            self._fence_pointers[index][1].size
            for index in range(first, last + 1)
        )
