"""Fence-pointer pseudo-filter — vanilla RocksDB's only range pruning.

LSM stores keep per-page fence pointers (min/max key of each disk page) in
memory.  They can rule out a query range only when it falls entirely outside
the run's key span or inside a *gap* between one page's max key and the next
page's min key.  For dense key sets and short ranges this almost never
happens — which is exactly why vanilla RocksDB is the slowest baseline in
Fig. 5(D).

This standalone model stores (min, max) per simulated page so the benchmark
harness can evaluate fence pruning in isolation; the real per-SST fence
pointers used by the store live in :mod:`repro.lsm.sstable`.
"""

from __future__ import annotations

import bisect
from typing import Sequence

from repro.errors import FilterBuildError, FilterQueryError
from repro.filters.base import KeyFilter, register_filter_codec

__all__ = ["FencePointerFilter"]


class FencePointerFilter(KeyFilter):
    """Min/max-per-page fence pointers exposed through the filter template.

    Parameters
    ----------
    key_bits:
        Width of the key domain (used only for serialization sizing).
    keys_per_page:
        Number of keys covered by each simulated disk page.
    """

    name = "fence"

    def __init__(self, key_bits: int = 64, keys_per_page: int = 64) -> None:
        if keys_per_page < 1:
            raise FilterBuildError(
                f"keys_per_page must be >= 1, got {keys_per_page}"
            )
        self.key_bits = key_bits
        self.keys_per_page = keys_per_page
        self._page_mins: list[int] | None = None
        self._page_maxs: list[int] = []
        self._probes = 0

    def populate(self, keys: Sequence[int]) -> None:
        """Record the min and max key of every page of sorted keys."""
        if self._page_mins is not None:
            raise FilterBuildError("FencePointerFilter is already populated")
        ordered = sorted(set(int(k) for k in keys))
        self._page_mins = []
        self._page_maxs = []
        for start in range(0, len(ordered), self.keys_per_page):
            page = ordered[start : start + self.keys_per_page]
            self._page_mins.append(page[0])
            self._page_maxs.append(page[-1])

    def may_contain(self, key: int) -> bool:
        """A point is ruled out only when it falls in an inter-page gap."""
        return self.may_contain_range(key, key)

    def may_contain_range(self, low: int, high: int) -> bool:
        """``False`` iff the range overlaps no page's [min, max] span."""
        if low > high:
            raise FilterQueryError(f"invalid range: low={low} > high={high}")
        mins = self._require_populated()
        self._probes += 1
        if not mins:
            return False
        # Find the last page whose min <= high; the range can only intersect
        # that page or the gap after an earlier page.
        idx = bisect.bisect_right(mins, high) - 1
        if idx < 0:
            return False  # entirely before the first page
        return self._page_maxs[idx] >= low

    def size_in_bits(self) -> int:
        """Two keys of memory per page."""
        return 2 * self.key_bits * len(self._page_maxs)

    def serialize(self) -> bytes:
        """Serialize headers plus the fence arrays."""
        mins = self._require_populated()
        parts = [
            self.key_bits.to_bytes(2, "little"),
            self.keys_per_page.to_bytes(4, "little"),
            len(mins).to_bytes(8, "little"),
        ]
        width = (self.key_bits + 7) // 8
        for value in mins:
            parts.append(value.to_bytes(width, "little"))
        for value in self._page_maxs:
            parts.append(value.to_bytes(width, "little"))
        return b"".join(parts)

    @classmethod
    def deserialize(cls, payload: bytes) -> "FencePointerFilter":
        """Reconstruct from :meth:`serialize` output."""
        key_bits = int.from_bytes(payload[:2], "little")
        keys_per_page = int.from_bytes(payload[2:6], "little")
        count = int.from_bytes(payload[6:14], "little")
        width = (key_bits + 7) // 8
        filt = cls(key_bits=key_bits, keys_per_page=keys_per_page)
        offset = 14
        mins = []
        for _ in range(count):
            mins.append(int.from_bytes(payload[offset : offset + width], "little"))
            offset += width
        maxs = []
        for _ in range(count):
            maxs.append(int.from_bytes(payload[offset : offset + width], "little"))
            offset += width
        filt._page_mins = mins
        filt._page_maxs = maxs
        return filt

    def probe_count(self) -> int:
        return self._probes

    def reset_probe_count(self) -> None:
        self._probes = 0

    def _require_populated(self) -> list[int]:
        if self._page_mins is None:
            raise FilterBuildError("FencePointerFilter not populated yet")
        return self._page_mins


register_filter_codec(FencePointerFilter.name, FencePointerFilter.deserialize)
