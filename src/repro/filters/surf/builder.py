"""Culled-trie construction for SuRF [74].

SuRF stores the *minimum-length unique prefixes* of its keys: the trie over
all keys is culled at the shallowest depth where each key is distinguishable
from every other key.  For sorted unique keys this depth is computable
locally — one byte past the longer of the longest-common-prefixes with the
two neighbours.

A key that is a proper prefix of its successor cannot be distinguished by
any of its own bytes; it receives a *terminator* edge (SuRF's ``$``-label /
prefix-key mechanism).  We map byte labels to ``symbol = byte + 1`` and give
the terminator symbol 0, so terminators sort before all byte labels and
lexicographic trie order equals byte-string order.

The output is a level-order edge listing (:class:`CulledTrie`) consumed by
the LOUDS-Dense and LOUDS-Sparse encoders.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.errors import FilterBuildError

#: Symbol reserved for the end-of-key terminator edge; sorts first.
TERM_SYMBOL = 0

#: Size of the symbol alphabet (terminator + 256 byte values).
ALPHABET = 257

__all__ = ["CulledTrie", "TrieLevel", "build_culled_trie", "TERM_SYMBOL", "ALPHABET"]


@dataclass
class TrieLevel:
    """All edges at one trie depth, in level order.

    Parallel arrays: ``labels[i]`` is the edge symbol, ``has_child[i]``
    whether the edge leads to an internal node, ``louds[i]`` whether the edge
    is the first of its parent node.  ``leaf_key_ids`` lists, for leaf edges
    only (in position order), the index of the source key they represent.
    """

    labels: list[int] = field(default_factory=list)
    has_child: list[bool] = field(default_factory=list)
    louds: list[bool] = field(default_factory=list)
    leaf_key_ids: list[int] = field(default_factory=list)

    @property
    def num_edges(self) -> int:
        """Edges at this level."""
        return len(self.labels)

    @property
    def num_nodes(self) -> int:
        """Nodes at this level (counted via LOUDS start bits)."""
        return sum(self.louds)


@dataclass
class CulledTrie:
    """Level-order representation of the culled trie.

    ``cull_depths[i]`` is the culled prefix length in *bytes* for key ``i``
    (a terminator leaf has depth ``len(key)`` with an extra terminator edge).
    """

    levels: list[TrieLevel]
    num_keys: int
    cull_depths: list[int]

    @property
    def num_edges(self) -> int:
        """Total edges across all levels."""
        return sum(level.num_edges for level in self.levels)

    @property
    def num_nodes(self) -> int:
        """Total nodes across all levels (excluding the conceptual root)."""
        return sum(level.num_nodes for level in self.levels)

    def leaf_key_ids_in_order(self) -> list[int]:
        """Key ids of every leaf edge in global (level, position) order."""
        ids: list[int] = []
        for level in self.levels:
            ids.extend(level.leaf_key_ids)
        return ids


def longest_common_prefix(a: bytes, b: bytes) -> int:
    """Length in bytes of the longest common prefix of ``a`` and ``b``."""
    limit = min(len(a), len(b))
    for index in range(limit):
        if a[index] != b[index]:
            return index
    return limit


def cull_depths(keys: list[bytes]) -> list[int]:
    """Per-key minimum unique prefix length (bytes), for sorted unique keys.

    A result equal to ``len(key) + 1`` signals a terminator leaf: the key is
    a proper prefix of a neighbour and needs the ``$`` edge.
    """
    depths: list[int] = []
    for index, key in enumerate(keys):
        lcp = 0
        if index > 0:
            lcp = max(lcp, longest_common_prefix(key, keys[index - 1]))
        if index + 1 < len(keys):
            lcp = max(lcp, longest_common_prefix(key, keys[index + 1]))
        depths.append(min(lcp + 1, len(key) + 1))
    return depths


def _leaf_symbols(key: bytes, depth: int) -> tuple[int, ...]:
    """The culled prefix of ``key`` as a symbol tuple (terminator-aware)."""
    if depth <= len(key):
        return tuple(byte + 1 for byte in key[:depth])
    return tuple(byte + 1 for byte in key) + (TERM_SYMBOL,)


def build_culled_trie(keys: list[bytes]) -> CulledTrie:
    """Build the culled trie of ``keys`` (sorted, unique byte strings).

    Runs a breadth-first grouping over the sorted leaf prefixes: a queue
    entry is a slice of keys sharing a prefix of the current depth; the
    distinct next symbols of the slice become the node's edges.
    """
    if not keys:
        return CulledTrie(levels=[], num_keys=0, cull_depths=[])
    for index in range(1, len(keys)):
        if keys[index - 1] >= keys[index]:
            raise FilterBuildError("keys must be sorted and unique byte strings")
    if any(len(key) == 0 for key in keys):
        raise FilterBuildError("empty keys are not supported")

    depths = cull_depths(keys)
    prefixes = [_leaf_symbols(key, depth) for key, depth in zip(keys, depths)]

    levels: list[TrieLevel] = []
    # Queue entries: (start, end, depth) — keys[start:end] share their first
    # `depth` symbols.  BFS order makes appends land in level order.
    queue: deque[tuple[int, int, int]] = deque([(0, len(keys), 0)])
    while queue:
        start, end, depth = queue.popleft()
        while len(levels) <= depth:
            levels.append(TrieLevel())
        level = levels[depth]
        first_edge_of_node = True
        cursor = start
        while cursor < end:
            symbol = prefixes[cursor][depth]
            group_end = cursor
            while group_end < end and prefixes[group_end][depth] == symbol:
                group_end += 1
            is_leaf = (
                group_end - cursor == 1 and len(prefixes[cursor]) == depth + 1
            )
            level.labels.append(symbol)
            level.has_child.append(not is_leaf)
            level.louds.append(first_edge_of_node)
            first_edge_of_node = False
            if is_leaf:
                level.leaf_key_ids.append(cursor)
            else:
                queue.append((cursor, group_end, depth + 1))
            cursor = group_end

    return CulledTrie(levels=levels, num_keys=len(keys), cull_depths=depths)
