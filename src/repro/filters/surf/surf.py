"""SuRF — the Succinct Range Filter of Zhang et al. [74], reimplemented.

SuRF culls the trie of its keys at the shortest unique prefixes, encodes the
upper levels with LOUDS-Dense bitmaps and the lower levels with LOUDS-Sparse
arrays, and optionally stores per-key *suffix* bits:

* **SuRF-Base** — structure only.
* **SuRF-Hash** — ``s`` hash bits of each full key, improving point queries
  (not range queries).
* **SuRF-Real** — the ``s`` key bits following the culled prefix, improving
  both point and (weakly) range queries.

Range emptiness is answered by seeking the first stored (culled) key whose
represented interval can reach the query's low bound, then checking whether
that interval starts at or below the high bound — the trie-order
``move_to_key_greater_than`` operation of the original implementation.

The integer-domain adapter (:class:`SurfFilter`) plugs SuRF into the master
filter template, including the paper's procedure for fitting the suffix
length to a memory budget (§5, "Workload and Setup").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal, Sequence

from repro.core.bitarray import BitArray
from repro.core.hashing import hash_bytes
from repro.errors import FilterBuildError, FilterQueryError, SerializationError
from repro.filters.base import KeyFilter, register_filter_codec
from repro.filters.surf.builder import TERM_SYMBOL, build_culled_trie
from repro.filters.surf.louds_dense import LoudsDense
from repro.filters.surf.louds_sparse import LoudsSparse

Variant = Literal["base", "hash", "real"]

#: LOUDS-DS size ratio: levels are encoded dense while the dense encoding
#: stays below (total sparse-encoded size) / ratio.  64 in the SuRF paper.
DENSE_SIZE_RATIO = 64

__all__ = ["SuRF", "SurfFilter", "DENSE_SIZE_RATIO"]


class _SuffixStore:
    """Fixed-width packed suffix bits, one slot per leaf."""

    __slots__ = ("suffix_bits", "_bits", "num_slots")

    def __init__(self, suffix_bits: int, num_slots: int) -> None:
        self.suffix_bits = suffix_bits
        self.num_slots = num_slots
        self._bits = BitArray(suffix_bits * num_slots)

    def put(self, slot: int, value: int) -> None:
        base = slot * self.suffix_bits
        for bit in range(self.suffix_bits):
            if (value >> (self.suffix_bits - 1 - bit)) & 1:
                self._bits.set(base + bit)

    def get(self, slot: int) -> int:
        base = slot * self.suffix_bits
        value = 0
        for bit in range(self.suffix_bits):
            value = (value << 1) | self._bits.test(base + bit)
        return value

    def size_in_bits(self) -> int:
        return self._bits.num_bits

    def to_bytes(self) -> bytes:
        header = self.suffix_bits.to_bytes(2, "little") + self.num_slots.to_bytes(
            8, "little"
        )
        return header + self._bits.to_bytes()

    @classmethod
    def from_bytes(cls, payload: bytes) -> "_SuffixStore":
        store = cls.__new__(cls)
        store.suffix_bits = int.from_bytes(payload[:2], "little")
        store.num_slots = int.from_bytes(payload[2:10], "little")
        store._bits = BitArray.from_bytes(payload[10:])
        return store


@dataclass(frozen=True)
class _Leaf:
    """Result of a trie seek: the leaf's root path and its value slot."""

    path: tuple[int, ...]  # symbols from the root, possibly ending in TERM
    value_index: int

    def prefix_bytes(self) -> bytes:
        """The culled key prefix (terminator stripped)."""
        symbols = self.path
        if symbols and symbols[-1] == TERM_SYMBOL:
            symbols = symbols[:-1]
        return bytes(symbol - 1 for symbol in symbols)

    @property
    def is_exact_key(self) -> bool:
        """Terminator leaves represent exactly one key, no extensions."""
        return bool(self.path) and self.path[-1] == TERM_SYMBOL


class SuRF:
    """Succinct range filter over byte-string keys.

    Build with :meth:`build`; query with :meth:`may_contain` and
    :meth:`may_contain_range`.  Instances are immutable.
    """

    def __init__(
        self,
        dense: LoudsDense,
        sparse: LoudsSparse,
        suffixes: _SuffixStore,
        variant: Variant,
        num_keys: int,
    ) -> None:
        self._dense = dense
        self._sparse = sparse
        self._suffixes = suffixes
        self.variant = variant
        self.num_keys = num_keys
        self.node_probes = 0  # cumulative traversal cost counter

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        keys: Sequence[bytes],
        variant: Variant = "real",
        suffix_bits: int = 8,
        dense_levels: int | None = None,
    ) -> "SuRF":
        """Build a SuRF over byte-string keys.

        Parameters
        ----------
        keys:
            Byte strings; sorted+deduplicated internally.
        variant:
            ``base`` (no suffixes), ``hash``, or ``real``.
        suffix_bits:
            Suffix width per key (ignored for ``base``).
        dense_levels:
            Number of top levels to encode LOUDS-Dense.  ``None`` applies
            the LOUDS-DS size-ratio rule.
        """
        if variant not in ("base", "hash", "real"):
            raise FilterBuildError(f"unknown SuRF variant {variant!r}")
        if variant == "base":
            suffix_bits = 0
        if suffix_bits < 0 or suffix_bits > 64:
            raise FilterBuildError(
                f"suffix_bits must be in [0, 64], got {suffix_bits}"
            )
        ordered = sorted(set(bytes(k) for k in keys))
        trie = build_culled_trie(ordered)

        if dense_levels is None:
            dense_levels = cls._auto_dense_levels(trie)
        dense_levels = max(0, min(dense_levels, len(trie.levels)))
        dense = LoudsDense.from_levels(trie.levels[:dense_levels])
        sparse = LoudsSparse.from_levels(trie.levels[dense_levels:])

        leaf_key_ids = trie.leaf_key_ids_in_order()
        suffixes = _SuffixStore(suffix_bits, len(leaf_key_ids))
        if suffix_bits:
            for slot, key_id in enumerate(leaf_key_ids):
                key = ordered[key_id]
                if variant == "hash":
                    value = hash_bytes(key) & ((1 << suffix_bits) - 1)
                else:
                    value = _real_suffix(key, trie.cull_depths[key_id], suffix_bits)
                suffixes.put(slot, value)
        return cls(dense, sparse, suffixes, variant, len(ordered))

    @staticmethod
    def _auto_dense_levels(trie) -> int:
        """Apply the LOUDS-DS rule: dense while cheap relative to the trie."""
        total_sparse_bits = trie.num_edges * 10
        cutoff = 0
        dense_bits = 0
        for level in trie.levels:
            dense_bits += level.num_nodes * (2 * 256 + 1)
            if dense_bits * DENSE_SIZE_RATIO > max(total_sparse_bits, 1):
                break
            cutoff += 1
        return cutoff

    # ------------------------------------------------------------------
    # Shape / accounting
    # ------------------------------------------------------------------
    @property
    def suffix_bits(self) -> int:
        """Stored suffix width per key."""
        return self._suffixes.suffix_bits

    def size_in_bits(self) -> int:
        """Succinct-encoding cost: dense + sparse + suffixes."""
        return (
            self._dense.size_in_bits()
            + self._sparse.size_in_bits()
            + self._suffixes.size_in_bits()
        )

    def structure_bits(self) -> int:
        """Trie-structure cost only (excludes suffixes)."""
        return self._dense.size_in_bits() + self._sparse.size_in_bits()

    # ------------------------------------------------------------------
    # Node navigation across the two regions
    # ------------------------------------------------------------------
    # A node handle is ('d', dense_node_id) or ('s', sparse_local_id).

    def _root(self) -> tuple[str, int]:
        if self._dense.num_nodes > 0:
            return ("d", 0)
        return ("s", 0)

    def _smallest_edge_ge(self, node: tuple[str, int], symbol: int):
        """Smallest out-edge of ``node`` with symbol >= ``symbol``.

        Returns ``(symbol, edge_ref)`` or ``None``; ``edge_ref`` is the
        symbol again for dense nodes or the label position for sparse nodes.
        """
        self.node_probes += 1
        region, node_id = node
        if region == "d":
            found = self._dense.smallest_label_ge(node_id, symbol)
            if found is None:
                return None
            return found, found
        found = self._sparse.smallest_label_ge(node_id, symbol)
        if found is None:
            return None
        return found[0], found[1]

    def _edge_is_leaf(self, node: tuple[str, int], edge_ref: int) -> bool:
        region, node_id = node
        if region == "d":
            return not self._dense.has_child(node_id, edge_ref)
        return not self._sparse.edge_has_child(edge_ref)

    def _edge_child(self, node: tuple[str, int], edge_ref: int) -> tuple[str, int]:
        region, node_id = node
        if region == "d":
            child = self._dense.child_id(node_id, edge_ref)
            if child < self._dense.num_nodes:
                return ("d", child)
            return ("s", child - self._dense.num_nodes)
        return ("s", self._sparse.child_node(edge_ref))

    def _edge_value_index(self, node: tuple[str, int], edge_ref: int) -> int:
        region, node_id = node
        if region == "d":
            return self._dense.leaf_value_index(node_id, edge_ref)
        return self._dense.num_leaves + self._sparse.leaf_value_index(edge_ref)

    def _has_any_node(self) -> bool:
        return self._dense.num_nodes > 0 or self._sparse.num_nodes > 0

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def may_contain(self, key: bytes) -> bool:
        """Point lookup: ``False`` only if ``key`` is definitely absent."""
        if self.num_keys == 0 or not self._has_any_node():
            return False
        key = bytes(key)
        symbols = [byte + 1 for byte in key]
        node = self._root()
        for depth in range(len(symbols) + 1):
            target = symbols[depth] if depth < len(symbols) else TERM_SYMBOL
            found = self._smallest_edge_ge(node, target)
            if found is None or found[0] != target:
                return False
            _, edge_ref = found
            if self._edge_is_leaf(node, edge_ref):
                if depth >= len(symbols):
                    return True  # exact terminator match
                return self._check_suffix(
                    self._edge_value_index(node, edge_ref), key, depth + 1
                )
            node = self._edge_child(node, edge_ref)
        return False

    def _check_suffix(self, value_index: int, key: bytes, depth: int) -> bool:
        """Compare stored suffix bits against the query key's."""
        if self.suffix_bits == 0:
            return True
        stored = self._suffixes.get(value_index)
        if self.variant == "hash":
            probe = hash_bytes(key) & ((1 << self.suffix_bits) - 1)
        else:
            probe = _real_suffix(key, depth, self.suffix_bits)
        return stored == probe

    def may_contain_range(self, low: bytes, high: bytes) -> bool:
        """Range emptiness for byte-string bounds (inclusive).

        ``False`` only if no stored key can lie in ``[low, high]``.
        """
        low, high = bytes(low), bytes(high)
        if low > high:
            raise FilterQueryError(f"invalid range: low={low!r} > high={high!r}")
        leaf = self.seek(low)
        if leaf is None:
            return False
        prefix = leaf.prefix_bytes()
        # The leaf covers keys extending `prefix`; its smallest
        # representative is `prefix` itself (optionally refined by real
        # suffix bytes).  Positive iff that representative can be <= high.
        if self.variant == "real" and self.suffix_bits >= 8 and not leaf.is_exact_key:
            whole_bytes = self.suffix_bits // 8
            stored = self._suffixes.get(leaf.value_index)
            stored >>= self.suffix_bits - whole_bytes * 8
            # Trailing zero bytes may be padding for a key that ends inside
            # the suffix window; only the non-zero head provably belongs to
            # the stored key, so only it may tighten the minimal
            # representative (keeping the refinement sound).
            prefix = prefix + stored.to_bytes(whole_bytes, "big").rstrip(b"\x00")
        # Byte-string order already treats a stored prefix as its own minimal
        # extension ("ab" < "ab\x00..."), so a plain comparison is exact.
        return prefix <= high

    def seek(self, key: bytes) -> _Leaf | None:
        """First leaf (trie order) whose represented interval reaches ``key``.

        The original SuRF's ``moveToKeyGreaterThan``: returns the first
        stored culled prefix whose largest possible extension is >= ``key``.
        """
        if self.num_keys == 0 or not self._has_any_node():
            return None
        symbols = [byte + 1 for byte in bytes(key)]
        node = self._root()
        path: list[int] = []
        stack: list[tuple[tuple[str, int], int]] = []
        depth = 0
        while True:
            target = symbols[depth] if depth < len(symbols) else TERM_SYMBOL
            found = self._smallest_edge_ge(node, target)
            if found is not None:
                symbol, edge_ref = found
                if symbol > target:
                    return self._leftmost_leaf(node, symbol, edge_ref, path)
                # symbol == target
                if self._edge_is_leaf(node, edge_ref):
                    path.append(symbol)
                    return _Leaf(
                        tuple(path), self._edge_value_index(node, edge_ref)
                    )
                stack.append((node, symbol))
                path.append(symbol)
                node = self._edge_child(node, edge_ref)
                depth += 1
                continue
            # Backtrack to the first ancestor with a greater sibling edge.
            while stack:
                node, taken = stack.pop()
                path.pop()
                depth -= 1
                found = self._smallest_edge_ge(node, taken + 1)
                if found is not None:
                    symbol, edge_ref = found
                    return self._leftmost_leaf(node, symbol, edge_ref, path)
            return None

    def _leftmost_leaf(
        self,
        node: tuple[str, int],
        symbol: int,
        edge_ref: int,
        path: list[int],
    ) -> _Leaf:
        """Descend smallest labels from ``(node, symbol)`` to the first leaf."""
        path = list(path)
        while True:
            path.append(symbol)
            if self._edge_is_leaf(node, edge_ref):
                return _Leaf(tuple(path), self._edge_value_index(node, edge_ref))
            node = self._edge_child(node, edge_ref)
            found = self._smallest_edge_ge(node, TERM_SYMBOL)
            if found is None:  # pragma: no cover - internal nodes have edges
                raise FilterQueryError("corrupt trie: internal node with no edges")
            symbol, edge_ref = found

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    _MAGIC = b"SURF2"
    _VARIANT_CODES = {"base": 0, "hash": 1, "real": 2}

    def to_bytes(self) -> bytes:
        """Serialize the full structure (dense, sparse, suffixes)."""
        dense_bytes = self._dense.to_bytes()
        sparse_bytes = self._sparse.to_bytes()
        suffix_bytes = self._suffixes.to_bytes()
        return b"".join(
            [
                self._MAGIC,
                bytes([self._VARIANT_CODES[self.variant]]),
                self.num_keys.to_bytes(8, "little"),
                len(dense_bytes).to_bytes(8, "little"),
                dense_bytes,
                len(sparse_bytes).to_bytes(8, "little"),
                sparse_bytes,
                len(suffix_bytes).to_bytes(8, "little"),
                suffix_bytes,
            ]
        )

    @classmethod
    def from_bytes(cls, payload: bytes) -> "SuRF":
        """Reconstruct from :meth:`to_bytes` output."""
        if payload[:5] != cls._MAGIC:
            raise SerializationError("bad SuRF magic")
        variant = {v: k for k, v in cls._VARIANT_CODES.items()}.get(payload[5])
        if variant is None:
            raise SerializationError(f"unknown SuRF variant code {payload[5]}")
        num_keys = int.from_bytes(payload[6:14], "little")
        offset = 14
        sections: list[bytes] = []
        for _ in range(3):
            length = int.from_bytes(payload[offset : offset + 8], "little")
            offset += 8
            sections.append(payload[offset : offset + length])
            offset += length
        return cls(
            LoudsDense.from_bytes(sections[0]),
            LoudsSparse.from_bytes(sections[1]),
            _SuffixStore.from_bytes(sections[2]),
            variant,
            num_keys,
        )

    def __repr__(self) -> str:
        return (
            f"SuRF(variant={self.variant!r}, keys={self.num_keys}, "
            f"bits={self.size_in_bits()})"
        )


def _real_suffix(key: bytes, depth: int, suffix_bits: int) -> int:
    """The ``suffix_bits`` key bits starting at byte offset ``depth``.

    Keys shorter than the requested window are zero-padded, matching how a
    culled prefix's minimal extension behaves.
    """
    if suffix_bits == 0:
        return 0
    needed_bytes = (suffix_bits + 7) // 8
    window = key[depth : depth + needed_bytes]
    window = window + b"\x00" * (needed_bytes - len(window))
    value = int.from_bytes(window, "big")
    return value >> (needed_bytes * 8 - suffix_bits)


# ----------------------------------------------------------------------
# Integer-domain adapter
# ----------------------------------------------------------------------

class SurfFilter(KeyFilter):
    """SuRF behind the master filter template, over integer keys.

    Integers are encoded big-endian at a fixed width so lexicographic byte
    order equals numeric order.  ``fit_to_budget`` applies the paper's
    procedure of trading suffix length for memory: the structural cost is
    fixed, so the suffix width is set to the remaining per-key budget
    (clamped at zero when even the structure exceeds the budget — the
    paper's "minimum possible memory" fallback).
    """

    name = "surf"

    def __init__(
        self,
        key_bits: int = 64,
        variant: Variant = "real",
        suffix_bits: int = 8,
        bits_per_key: float | None = None,
        salt: int = 0,
    ) -> None:
        if key_bits < 1 or key_bits % 8:
            raise FilterBuildError(
                f"SurfFilter needs a byte-aligned key width, got {key_bits}"
            )
        if salt:
            # SuRF is structural: the trie layout is a deterministic
            # function of the key bytes, with no hash to re-key.  Reject
            # loudly rather than silently building an unsalted (and thus
            # still attackable) filter under a salted configuration.
            raise FilterBuildError(
                "SuRF cannot be salted: it is a structural filter (its "
                "trie is derived from the keys, not from hashes), so "
                "per-SST salting cannot re-key it and learned false "
                "positives persist across rebuilds"
            )
        self.key_bits = key_bits
        self.variant = variant
        self.suffix_bits = suffix_bits
        self.bits_per_key = bits_per_key
        self._surf: SuRF | None = None

    def _encode(self, key: int) -> bytes:
        if key < 0 or key >> self.key_bits:
            raise FilterQueryError(
                f"key {key} outside domain [0, 2^{self.key_bits})"
            )
        return int(key).to_bytes(self.key_bits // 8, "big")

    def populate(self, keys: Sequence[int]) -> None:
        """Build the trie; honours ``bits_per_key`` by fitting suffix width."""
        if self._surf is not None:
            raise FilterBuildError("SurfFilter is already populated")
        encoded = sorted({self._encode(int(k)) for k in keys})
        if self.bits_per_key is not None:
            self._surf = self._fit_to_budget(encoded)
        else:
            self._surf = SuRF.build(
                encoded, variant=self.variant, suffix_bits=self.suffix_bits
            )

    def _fit_to_budget(self, encoded: list[bytes]) -> SuRF:
        """Size the suffix so total memory tracks ``bits_per_key``."""
        probe = SuRF.build(encoded, variant="base", suffix_bits=0)
        if not encoded:
            return probe
        budget_bits = self.bits_per_key * len(encoded)
        spare = budget_bits - probe.structure_bits()
        suffix_bits = int(max(0, min(64, spare // len(encoded))))
        if suffix_bits == 0 or self.variant == "base":
            self.suffix_bits = 0 if self.variant != "base" else self.suffix_bits
            return probe
        self.suffix_bits = suffix_bits
        return SuRF.build(encoded, variant=self.variant, suffix_bits=suffix_bits)

    def may_contain(self, key: int) -> bool:
        """Point lookup."""
        return self._require_populated().may_contain(self._encode(int(key)))

    def may_contain_range(self, low: int, high: int) -> bool:
        """Range-emptiness lookup."""
        if low > high:
            raise FilterQueryError(f"invalid range: low={low} > high={high}")
        surf = self._require_populated()
        return surf.may_contain_range(self._encode(int(low)), self._encode(int(high)))

    def size_in_bits(self) -> int:
        """Succinct-encoding memory cost."""
        return self._require_populated().size_in_bits()

    def serialize(self) -> bytes:
        """Serialize: key width + SuRF payload."""
        return self.key_bits.to_bytes(2, "little") + self._require_populated().to_bytes()

    @classmethod
    def deserialize(cls, payload: bytes) -> "SurfFilter":
        """Reconstruct from :meth:`serialize` output."""
        key_bits = int.from_bytes(payload[:2], "little")
        surf = SuRF.from_bytes(payload[2:])
        filt = cls(key_bits=key_bits, variant=surf.variant,
                   suffix_bits=surf.suffix_bits)
        filt._surf = surf
        return filt

    def probe_count(self) -> int:
        if self._surf is None:
            return 0
        return self._surf.node_probes

    def reset_probe_count(self) -> None:
        if self._surf is not None:
            self._surf.node_probes = 0

    def _require_populated(self) -> SuRF:
        if self._surf is None:
            raise FilterBuildError("SurfFilter not populated yet")
        return self._surf


register_filter_codec(SurfFilter.name, SurfFilter.deserialize)
