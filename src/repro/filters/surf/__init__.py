"""SuRF [74] — succinct range filter with LOUDS-Dense/Sparse encodings."""

from repro.filters.surf.bitvector import RankBitVector
from repro.filters.surf.builder import CulledTrie, build_culled_trie
from repro.filters.surf.louds_dense import LoudsDense
from repro.filters.surf.louds_sparse import LoudsSparse
from repro.filters.surf.surf import SuRF, SurfFilter

__all__ = [
    "CulledTrie",
    "LoudsDense",
    "LoudsSparse",
    "RankBitVector",
    "SuRF",
    "SurfFilter",
    "build_culled_trie",
]
