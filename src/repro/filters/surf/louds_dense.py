"""LOUDS-Dense encoding of the upper trie levels (SuRF's fast region).

Each node is encoded as two 257-bit bitmaps (one bit per symbol in the
terminator-extended alphabet): ``labels`` marks which out-edges exist and
``has_child`` marks which of those lead to internal nodes.  Bitmaps are kept
as arbitrary-precision Python ints, which makes "smallest set bit >= s"
queries a couple of shifts.

Navigation is rank-based: children are numbered by counting set
``has_child`` bits in (node, symbol) order, which — because every non-root
node has exactly one parent edge — equals the global level-order node
numbering.  Leaf edges are numbered the same way over ``labels & ~has_child``
to index the suffix (value) array.

Memory accounting follows SuRF: 2 x 256 bits of bitmap + 1 prefix-key bit
per node (the terminator bit plays the prefix-key role).
"""

from __future__ import annotations

import numpy as np

from repro.errors import SerializationError
from repro.filters.surf.builder import ALPHABET, TrieLevel

_MASK_BYTES = (ALPHABET + 7) // 8  # 33 bytes per 257-bit mask

__all__ = ["LoudsDense"]


class LoudsDense:
    """Bitmap-per-node encoding of trie levels ``[0, cutoff)``.

    Node ids are global level-order ids (root = 0); this region always
    contains a contiguous prefix of those ids.
    """

    __slots__ = ("_label_masks", "_child_masks", "_cum_children", "_cum_leaves")

    def __init__(self, label_masks: list[int], child_masks: list[int]) -> None:
        self._label_masks = label_masks
        self._child_masks = child_masks
        children = [mask.bit_count() for mask in child_masks]
        leaves = [
            (label & ~child).bit_count()
            for label, child in zip(label_masks, child_masks)
        ]
        self._cum_children = np.concatenate(
            ([0], np.cumsum(children, dtype=np.int64))
        ) if child_masks else np.zeros(1, dtype=np.int64)
        self._cum_leaves = np.concatenate(
            ([0], np.cumsum(leaves, dtype=np.int64))
        ) if label_masks else np.zeros(1, dtype=np.int64)

    @classmethod
    def from_levels(cls, levels: list[TrieLevel]) -> "LoudsDense":
        """Encode trie levels (level order) into per-node bitmaps."""
        label_masks: list[int] = []
        child_masks: list[int] = []
        for level in levels:
            label_mask = 0
            child_mask = 0
            for position, symbol in enumerate(level.labels):
                if level.louds[position] and position > 0:
                    label_masks.append(label_mask)
                    child_masks.append(child_mask)
                    label_mask = 0
                    child_mask = 0
                label_mask |= 1 << symbol
                if level.has_child[position]:
                    child_mask |= 1 << symbol
            if level.labels:
                label_masks.append(label_mask)
                child_masks.append(child_mask)
        return cls(label_masks, child_masks)

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Nodes encoded in this region."""
        return len(self._label_masks)

    @property
    def num_children(self) -> int:
        """Total child edges leaving this region's nodes."""
        return int(self._cum_children[-1])

    @property
    def num_leaves(self) -> int:
        """Total leaf edges (value slots) in this region."""
        return int(self._cum_leaves[-1])

    # ------------------------------------------------------------------
    # Navigation primitives
    # ------------------------------------------------------------------
    def has_label(self, node: int, symbol: int) -> bool:
        """Does ``node`` have an out-edge labelled ``symbol``?"""
        return bool((self._label_masks[node] >> symbol) & 1)

    def has_child(self, node: int, symbol: int) -> bool:
        """Does the edge ``(node, symbol)`` lead to an internal node?"""
        return bool((self._child_masks[node] >> symbol) & 1)

    def smallest_label_ge(self, node: int, symbol: int) -> int | None:
        """Smallest edge symbol of ``node`` that is >= ``symbol``."""
        remaining = self._label_masks[node] >> symbol
        if remaining == 0:
            return None
        return symbol + (remaining & -remaining).bit_length() - 1

    def child_id(self, node: int, symbol: int) -> int:
        """Global level-order id of the child along ``(node, symbol)``.

        Valid only when :meth:`has_child` is true.  Children are numbered
        ``1 + rank`` of the has-child bit in (node, symbol) order; ids that
        overflow this region's node count belong to the sparse region.
        """
        below = self._child_masks[node] & ((1 << symbol) - 1)
        return int(self._cum_children[node]) + below.bit_count() + 1

    def leaf_value_index(self, node: int, symbol: int) -> int:
        """Value-slot index of the leaf edge ``(node, symbol)``."""
        leaf_mask = self._label_masks[node] & ~self._child_masks[node]
        below = leaf_mask & ((1 << symbol) - 1)
        return int(self._cum_leaves[node]) + below.bit_count()

    # ------------------------------------------------------------------
    # Accounting / serialization
    # ------------------------------------------------------------------
    def size_in_bits(self) -> int:
        """SuRF's dense cost: 2*256 bitmap bits + 1 prefix-key bit per node."""
        return self.num_nodes * (2 * 256 + 1)

    def to_bytes(self) -> bytes:
        """Serialize: node count + fixed-width mask pairs."""
        parts = [self.num_nodes.to_bytes(8, "little")]
        for label, child in zip(self._label_masks, self._child_masks):
            parts.append(label.to_bytes(_MASK_BYTES, "little"))
            parts.append(child.to_bytes(_MASK_BYTES, "little"))
        return b"".join(parts)

    @classmethod
    def from_bytes(cls, payload: bytes) -> "LoudsDense":
        """Reconstruct from :meth:`to_bytes` output."""
        if len(payload) < 8:
            raise SerializationError("truncated LoudsDense header")
        num_nodes = int.from_bytes(payload[:8], "little")
        expected = 8 + num_nodes * 2 * _MASK_BYTES
        if len(payload) != expected:
            raise SerializationError(
                f"LoudsDense payload is {len(payload)} bytes, expected {expected}"
            )
        label_masks: list[int] = []
        child_masks: list[int] = []
        offset = 8
        for _ in range(num_nodes):
            label_masks.append(
                int.from_bytes(payload[offset : offset + _MASK_BYTES], "little")
            )
            offset += _MASK_BYTES
            child_masks.append(
                int.from_bytes(payload[offset : offset + _MASK_BYTES], "little")
            )
            offset += _MASK_BYTES
        return cls(label_masks, child_masks)

    def __repr__(self) -> str:
        return f"LoudsDense(nodes={self.num_nodes}, leaves={self.num_leaves})"
