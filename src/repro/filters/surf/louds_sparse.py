"""LOUDS-Sparse encoding of the lower trie levels (SuRF's compact region).

Three parallel structures over all edges in level order:

* ``labels`` — the edge symbols (one ~byte each; we use uint16 to admit the
  terminator symbol),
* ``has_child`` — bit per edge: internal vs leaf,
* ``louds`` — bit per edge: 1 iff the edge is the first of its node.

Node ``s`` (sparse-local numbering, level order) owns the contiguous edge
range ``[select1(louds, s+1), select1(louds, s+2))``.  The child of the edge
at position ``p`` is sparse node ``roots + rank1(has_child, p+1) - 1`` where
``roots`` is the number of sparse nodes whose parent lives in the dense
region.  Leaf edges index the value (suffix) array by
``p - rank1(has_child, p)``.

Memory accounting follows SuRF: 10 bits per edge (8 label + 1 has-child +
1 LOUDS).
"""

from __future__ import annotations

import numpy as np

from repro.errors import SerializationError
from repro.filters.surf.bitvector import RankBitVector
from repro.filters.surf.builder import TrieLevel

__all__ = ["LoudsSparse"]


class LoudsSparse:
    """Label/has-child/LOUDS encoding of trie levels ``[cutoff, ...)``."""

    __slots__ = ("_labels", "_has_child", "_louds", "_num_root_nodes")

    def __init__(
        self,
        labels: np.ndarray,
        has_child: RankBitVector,
        louds: RankBitVector,
        num_root_nodes: int,
    ) -> None:
        self._labels = labels
        self._has_child = has_child
        self._louds = louds
        self._num_root_nodes = num_root_nodes

    @classmethod
    def from_levels(cls, levels: list[TrieLevel]) -> "LoudsSparse":
        """Encode trie levels (level order) into the parallel arrays.

        ``levels[0]`` holds the region's root nodes — the nodes whose parent
        edges live in the dense region (or the trie root when there is no
        dense region).
        """
        labels: list[int] = []
        has_child: list[bool] = []
        louds: list[bool] = []
        for level in levels:
            labels.extend(level.labels)
            has_child.extend(level.has_child)
            louds.extend(level.louds)
        num_root_nodes = levels[0].num_nodes if levels else 0
        return cls(
            np.asarray(labels, dtype=np.uint16),
            RankBitVector.from_bits(has_child),
            RankBitVector.from_bits(louds),
            num_root_nodes,
        )

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------
    @property
    def num_edges(self) -> int:
        """Total edges in the region."""
        return len(self._labels)

    @property
    def num_nodes(self) -> int:
        """Total nodes in the region."""
        return self._louds.num_ones

    @property
    def num_root_nodes(self) -> int:
        """Nodes whose parents live in the dense region."""
        return self._num_root_nodes

    @property
    def num_leaves(self) -> int:
        """Leaf edges (value slots) in the region."""
        return self.num_edges - self._has_child.num_ones

    # ------------------------------------------------------------------
    # Navigation primitives (sparse-local node ids)
    # ------------------------------------------------------------------
    def node_edge_range(self, node: int) -> tuple[int, int]:
        """Edge positions ``[start, end)`` owned by sparse node ``node``."""
        start = self._louds.select1(node + 1)
        if node + 2 <= self._louds.num_ones:
            end = self._louds.select1(node + 2)
        else:
            end = self.num_edges
        return start, end

    def smallest_label_ge(self, node: int, symbol: int) -> tuple[int, int] | None:
        """Smallest ``(symbol, position)`` edge of ``node`` with symbol >= s."""
        start, end = self.node_edge_range(node)
        index = int(np.searchsorted(self._labels[start:end], symbol, side="left"))
        if start + index >= end:
            return None
        position = start + index
        return int(self._labels[position]), position

    def label_position(self, node: int, symbol: int) -> int | None:
        """Position of edge ``(node, symbol)``, or None if absent."""
        found = self.smallest_label_ge(node, symbol)
        if found is None or found[0] != symbol:
            return None
        return found[1]

    def edge_has_child(self, position: int) -> bool:
        """Whether the edge at ``position`` leads to an internal node."""
        return self._has_child.get(position)

    def child_node(self, position: int) -> int:
        """Sparse-local id of the child node along the edge at ``position``."""
        return self._num_root_nodes + self._has_child.rank1(position + 1) - 1

    def leaf_value_index(self, position: int) -> int:
        """Region-local value-slot index of the leaf edge at ``position``."""
        return position - self._has_child.rank1(position)

    # ------------------------------------------------------------------
    # Accounting / serialization
    # ------------------------------------------------------------------
    def size_in_bits(self) -> int:
        """SuRF's sparse cost: 10 bits per edge (8 + 1 + 1)."""
        return self.num_edges * 10

    def to_bytes(self) -> bytes:
        """Serialize: root count, labels, then the two bit vectors."""
        label_bytes = self._labels.tobytes()
        has_child_bytes = self._has_child.to_bytes()
        louds_bytes = self._louds.to_bytes()
        return b"".join(
            [
                self._num_root_nodes.to_bytes(8, "little"),
                len(label_bytes).to_bytes(8, "little"),
                label_bytes,
                len(has_child_bytes).to_bytes(8, "little"),
                has_child_bytes,
                len(louds_bytes).to_bytes(8, "little"),
                louds_bytes,
            ]
        )

    @classmethod
    def from_bytes(cls, payload: bytes) -> "LoudsSparse":
        """Reconstruct from :meth:`to_bytes` output."""
        try:
            offset = 0
            num_root_nodes = int.from_bytes(payload[offset : offset + 8], "little")
            offset += 8
            sections: list[bytes] = []
            for _ in range(3):
                length = int.from_bytes(payload[offset : offset + 8], "little")
                offset += 8
                sections.append(payload[offset : offset + length])
                offset += length
        except (IndexError, ValueError) as exc:
            raise SerializationError("truncated LoudsSparse payload") from exc
        labels = np.frombuffer(sections[0], dtype=np.uint16).copy()
        return cls(
            labels,
            RankBitVector.from_bytes(sections[1]),
            RankBitVector.from_bytes(sections[2]),
            num_root_nodes,
        )

    def __repr__(self) -> str:
        return (
            f"LoudsSparse(edges={self.num_edges}, nodes={self.num_nodes}, "
            f"roots={self._num_root_nodes})"
        )
