"""Succinct bit vector with rank/select support for the LOUDS encodings.

SuRF's LOUDS-Dense/Sparse encodings are navigated entirely through
``rank1``/``select1`` queries over bit vectors.  This implementation keeps
the classic two-level design small: the raw bits live in a
:class:`~repro.core.bitarray.BitArray`; an auxiliary directory stores the
cumulative popcount at every 64-bit word boundary, giving O(1) ``rank1`` and
O(log n) ``select1`` (binary search over the directory).

The directory is a query-time acceleration structure; SuRF's memory
accounting (like the paper's) charges only the raw bits, so
:meth:`size_in_bits` reports the payload and
:meth:`overhead_bits` the directory separately.
"""

from __future__ import annotations

import numpy as np

from repro.core.bitarray import BitArray

__all__ = ["RankBitVector"]


class RankBitVector:
    """Immutable bit vector supporting ``rank1`` and ``select1``.

    Build from a Python iterable of booleans/ints via :meth:`from_bits`, or
    wrap an existing :class:`BitArray` (which must not be mutated afterward).
    """

    __slots__ = ("_bits", "_word_ranks", "_total_ones")

    def __init__(self, bits: BitArray) -> None:
        self._bits = bits
        words = bits.words()
        if len(words):
            counts = np.bitwise_count(words).astype(np.int64)
            self._word_ranks = np.concatenate(([0], np.cumsum(counts)))
        else:
            self._word_ranks = np.zeros(1, dtype=np.int64)
        self._total_ones = int(self._word_ranks[-1])

    @classmethod
    def from_bits(cls, flags) -> "RankBitVector":
        """Build from an iterable of truthy flags."""
        flags = list(flags)
        bits = BitArray(len(flags))
        for index, flag in enumerate(flags):
            if flag:
                bits.set(index)
        return cls(bits)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._bits.num_bits

    @property
    def num_ones(self) -> int:
        """Total number of set bits."""
        return self._total_ones

    def get(self, index: int) -> bool:
        """Bit at ``index``."""
        return self._bits.test(index)

    def rank1(self, index: int) -> int:
        """Number of set bits in ``[0, index)`` (exclusive prefix count)."""
        if index <= 0:
            return 0
        if index > len(self):
            index = len(self)
        word = index >> 6
        within = index & 63
        count = int(self._word_ranks[word])
        if within:
            mask = (1 << within) - 1
            count += (int(self._bits.words()[word]) & mask).bit_count()
        return count

    def select1(self, nth: int) -> int:
        """Position of the ``nth`` set bit (1-based).  Raises on overflow."""
        if not 1 <= nth <= self._total_ones:
            raise IndexError(
                f"select1({nth}) out of range (have {self._total_ones} ones)"
            )
        # Binary search the word directory for the word containing the bit.
        word = int(np.searchsorted(self._word_ranks, nth, side="left")) - 1
        remaining = nth - int(self._word_ranks[word])
        value = int(self._bits.words()[word])
        position = word << 6
        while True:
            low_bit = value & -value
            remaining -= 1
            if remaining == 0:
                return position + low_bit.bit_length() - 1
            value ^= low_bit

    # ------------------------------------------------------------------
    # Accounting / serialization
    # ------------------------------------------------------------------
    def size_in_bits(self) -> int:
        """Payload bits only (the succinct structure SuRF charges for)."""
        return len(self)

    def overhead_bits(self) -> int:
        """Query-acceleration directory size (not charged to the filter)."""
        return int(self._word_ranks.nbytes * 8)

    def to_bytes(self) -> bytes:
        """Serialize the payload bits (directory is rebuilt on load)."""
        return self._bits.to_bytes()

    @classmethod
    def from_bytes(cls, payload: bytes) -> "RankBitVector":
        """Reconstruct from :meth:`to_bytes` output."""
        return cls(BitArray.from_bytes(payload))

    def __repr__(self) -> str:
        return f"RankBitVector(len={len(self)}, ones={self._total_ones})"
