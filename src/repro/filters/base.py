"""The master *filter template* API (paper §4).

The paper standardises filters behind one template exposing "the fundamental
filter functionalities — populating the filter, querying the filter about the
existence of one or more keys (point lookups and range scans), and
serializing and deserializing the filter contents and its structure."

Every filter in this library — Rosetta, SuRF, Prefix Bloom, plain Bloom,
fence-pointer pseudo-filter, Cuckoo — implements :class:`KeyFilter` through a
small adapter so the LSM-tree store (:mod:`repro.lsm`) and the benchmark
harness can swap them freely.  Adapters operate on *integer keys* in a
``2^key_bits`` domain; the workload layer provides codecs between application
keys (ints, strings) and this domain.

A :class:`FilterFactory` captures the filter family plus its tuning knobs
(memory budget, max range, allocation strategy...) so the store can rebuild
filter instances at every flush/compaction, as the paper requires.
"""

from __future__ import annotations

import abc
import inspect
from typing import Callable, Iterable, Sequence

from repro.errors import FilterBuildError, SerializationError

__all__ = ["KeyFilter", "FilterFactory", "register_filter_codec", "deserialize_filter"]


class KeyFilter(abc.ABC):
    """Abstract probabilistic filter over integer keys in ``[0, 2^key_bits)``.

    Implementations are immutable after :meth:`populate` — one instance per
    immutable LSM run.
    """

    #: Short stable identifier used in serialized envelopes and reports.
    name: str = "abstract"

    @abc.abstractmethod
    def populate(self, keys: Sequence[int]) -> None:
        """Index all ``keys``; must be called exactly once, before queries."""

    @abc.abstractmethod
    def may_contain(self, key: int) -> bool:
        """Point lookup: ``False`` only if ``key`` is definitely absent."""

    @abc.abstractmethod
    def may_contain_range(self, low: int, high: int) -> bool:
        """Range lookup: ``False`` only if ``[low, high]`` is definitely empty."""

    @abc.abstractmethod
    def size_in_bits(self) -> int:
        """Memory footprint of the filter payload, in bits."""

    @abc.abstractmethod
    def serialize(self) -> bytes:
        """Serialize contents and structure to bytes."""

    def may_contain_batch(self, keys: Sequence[int]) -> list[bool]:
        """Vectorized point lookups; one verdict per key.

        The batched LSM point path (``DB.multi_get``) issues one call per
        run for that run's whole key group, so overriding this is how a
        filter joins the bulk read path.  The default degrades to a Python
        loop over :meth:`may_contain`; filters with a bulk probe path
        (Rosetta's and plain Bloom's ``contains_batch`` gather) override
        it.  Verdicts must agree with :meth:`may_contain` element-wise.
        """
        return [self.may_contain(int(key)) for key in keys]

    def may_contain_range_batch(self, lows: Sequence[int], highs: Sequence[int]) -> list[bool]:
        """Vectorized range lookups; one verdict per (low, high) pair.

        Default is a loop over :meth:`may_contain_range`; overridden where
        the filter can resolve the whole batch in bulk.
        """
        return [
            self.may_contain_range(int(lo), int(hi))
            for lo, hi in zip(lows, highs)
        ]

    def tightened_range(self, low: int, high: int) -> tuple[int, int] | None:
        """Optionally narrow a positive range (None = definitely empty).

        The default implementation degrades to plain range probing with no
        narrowing; Rosetta overrides this with §2.2.1 tightening.
        """
        if self.may_contain_range(low, high):
            return (low, high)
        return None

    def probe_count(self) -> int:
        """Cumulative internal probe count, if tracked (0 otherwise)."""
        return 0

    def reset_probe_count(self) -> None:
        """Reset internal probe counters, if tracked."""

    def design_fpr(self) -> float | None:
        """The FPR this filter was built to deliver, if it knows one.

        The FP-feedback attack detector compares each run's *observed*
        FPR against a multiple of this value; ``None`` (the default)
        means the filter publishes no design point and its runs are
        never flagged.
        """
        return None


class FilterFactory:
    """A named recipe that builds fresh :class:`KeyFilter` instances.

    The LSM store calls :meth:`build` once per flush/compaction output run;
    benchmarks call it once per configuration point.
    """

    def __init__(
        self,
        name: str,
        builder: Callable[[Sequence[int]], KeyFilter],
        *,
        bits_per_key: float | None = None,
    ) -> None:
        self.name = name
        self._builder = builder
        self.bits_per_key = bits_per_key
        self.salt_capable = _accepts_keyword(builder, "salt")
        self._bits_capable = _accepts_keyword(builder, "bits_per_key")

    def build(
        self,
        keys: Sequence[int],
        *,
        salt: int = 0,
        bits_per_key: float | None = None,
    ) -> KeyFilter:
        """Build a populated filter over ``keys``.

        ``salt`` re-keys the filter's hashes (per-SST salting); passing a
        nonzero salt to a recipe whose builder cannot accept one —
        structural filters like SuRF hash nothing and cannot be re-keyed —
        is a :class:`~repro.errors.FilterBuildError`, never silently
        ignored.  ``bits_per_key`` overrides the recipe's memory budget
        when the builder supports it (quarantined runs rebuild with bonus
        bits) and is dropped otherwise.
        """
        kwargs = {}
        if salt:
            if not self.salt_capable:
                raise FilterBuildError(
                    f"filter recipe {self.name!r} cannot be salted: its "
                    "builder accepts no 'salt' parameter (structural "
                    "filters like SuRF derive their layout from the keys "
                    "themselves and stay attackable; use a hashed filter "
                    "or set filter_salt_seed=0)"
                )
            kwargs["salt"] = salt
        if bits_per_key is not None and self._bits_capable:
            kwargs["bits_per_key"] = bits_per_key
        return self._builder(keys, **kwargs)

    def __repr__(self) -> str:
        return f"FilterFactory(name={self.name!r}, bits_per_key={self.bits_per_key})"


def _accepts_keyword(builder: Callable, keyword: str) -> bool:
    """Whether ``builder`` can be called with ``keyword=...``."""
    try:
        signature = inspect.signature(builder)
    except (TypeError, ValueError):
        return False
    for parameter in signature.parameters.values():
        if parameter.kind is inspect.Parameter.VAR_KEYWORD:
            return True
        if parameter.name == keyword and parameter.kind in (
            inspect.Parameter.POSITIONAL_OR_KEYWORD,
            inspect.Parameter.KEYWORD_ONLY,
        ):
            return True
    return False


# ----------------------------------------------------------------------
# Serialization envelope registry
# ----------------------------------------------------------------------
#
# Filter blocks inside SST files carry a one-byte-length name tag followed by
# the filter's own payload; deserialization dispatches on the tag.

_CODECS: dict[str, Callable[[bytes], KeyFilter]] = {}


def register_filter_codec(name: str, loader: Callable[[bytes], KeyFilter]) -> None:
    """Register a loader for filter envelopes tagged ``name``."""
    if not name or len(name.encode()) > 255:
        raise ValueError(f"invalid filter codec name {name!r}")
    _CODECS[name] = loader


def serialize_envelope(filt: KeyFilter) -> bytes:
    """Wrap a filter's payload in a self-describing, checksummed envelope.

    Layout: ``[tag_len u8][tag][crc32 u32le][payload]``.  The CRC covers
    the payload so bit rot inside a persisted filter block is detected at
    deserialization time, not returned as a silently-wrong filter.
    """
    import zlib

    tag = filt.name.encode()
    payload = filt.serialize()
    crc = zlib.crc32(payload).to_bytes(4, "little")
    return bytes([len(tag)]) + tag + crc + payload


def deserialize_filter(envelope: bytes) -> KeyFilter:
    """Reconstruct any registered filter from its envelope bytes."""
    import zlib

    if not envelope:
        raise SerializationError("empty filter envelope")
    tag_len = envelope[0]
    if len(envelope) < 1 + tag_len + 4:
        raise SerializationError("truncated filter envelope")
    try:
        name = envelope[1 : 1 + tag_len].decode()
    except UnicodeDecodeError as exc:
        raise SerializationError("corrupt filter envelope tag") from exc
    loader = _CODECS.get(name)
    if loader is None:
        raise SerializationError(
            f"no codec registered for filter {name!r} "
            f"(known: {sorted(_CODECS)})"
        )
    crc = int.from_bytes(envelope[1 + tag_len : 5 + tag_len], "little")
    payload = envelope[5 + tag_len :]
    if zlib.crc32(payload) != crc:
        raise SerializationError(f"filter envelope checksum mismatch ({name})")
    return loader(payload)
