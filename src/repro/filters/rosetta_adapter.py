"""Adapter exposing :class:`repro.core.Rosetta` through the filter template.

The core class already implements every capability; this wrapper pins build
parameters so the LSM store can rebuild instances per run, tracks probe
counts via the core's :class:`~repro.core.rosetta.ProbeStats`, and plugs into
the serialization envelope registry.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.core.rosetta import Rosetta
from repro.errors import FilterBuildError
from repro.filters.base import KeyFilter, register_filter_codec

__all__ = ["RosettaFilter"]


class RosettaFilter(KeyFilter):
    """Rosetta behind the :class:`~repro.filters.base.KeyFilter` template.

    Parameters mirror :meth:`repro.core.Rosetta.build`.
    """

    name = "rosetta"

    def __init__(
        self,
        key_bits: int = 64,
        bits_per_key: float = 22.0,
        max_range: int = 64,
        strategy: str = "optimized",
        range_size_histogram: Mapping[int, float] | None = None,
        salt: int = 0,
    ) -> None:
        self.key_bits = key_bits
        self.bits_per_key = bits_per_key
        self.max_range = max_range
        self.strategy = strategy
        self.range_size_histogram = (
            dict(range_size_histogram) if range_size_histogram else None
        )
        self.salt = salt
        self._rosetta: Rosetta | None = None

    def populate(self, keys: Sequence[int]) -> None:
        """Build the underlying Rosetta over ``keys``."""
        if self._rosetta is not None:
            raise FilterBuildError("RosettaFilter is already populated")
        self._rosetta = Rosetta.build(
            keys,
            key_bits=self.key_bits,
            bits_per_key=self.bits_per_key,
            max_range=self.max_range,
            strategy=self.strategy,
            range_size_histogram=self.range_size_histogram,
            salt=self.salt,
        )

    @property
    def rosetta(self) -> Rosetta:
        """The wrapped core filter (raises if not populated)."""
        return self._require_populated()

    def may_contain(self, key: int) -> bool:
        """Point lookup on the full-key level only (§2.2.2)."""
        return self._require_populated().may_contain(int(key))

    def may_contain_range(self, low: int, high: int) -> bool:
        """Dyadic decomposition + frontier doubting (Algorithm 2)."""
        return self._require_populated().may_contain_range(low, high)

    def may_contain_batch(self, keys: Sequence[int]) -> list[bool]:
        """Bulk point lookups on the full-key level.

        One :meth:`~repro.core.bloom.BloomFilter.contains_batch` gather for
        the whole batch, duplicates hashed once; wide (>64-bit) domains
        degrade to the scalar loop.
        """
        core = self._require_populated()
        if core.key_bits > 64:
            return [core.may_contain(int(key)) for key in keys]
        return [bool(v) for v in core.may_contain_batch(keys)]

    def may_contain_range_batch(
        self, lows: Sequence[int], highs: Sequence[int]
    ) -> list[bool]:
        """Bulk range lookups via the frontier engine (one sweep per level)."""
        core = self._require_populated()
        return [bool(v) for v in core.may_contain_range_batch(lows, highs)]

    def tightened_range(self, low: int, high: int) -> tuple[int, int] | None:
        """§2.2.1 effective-range tightening."""
        return self._require_populated().tightened_range(low, high)

    def size_in_bits(self) -> int:
        """Total memory across all Bloom-filter levels."""
        return self._require_populated().size_in_bits()

    def serialize(self) -> bytes:
        """Serialize the full multi-level structure."""
        return self._require_populated().to_bytes()

    @classmethod
    def deserialize(cls, payload: bytes) -> "RosettaFilter":
        """Reconstruct from :meth:`serialize` output."""
        rosetta = Rosetta.from_bytes(payload)
        filt = cls(key_bits=rosetta.key_bits, salt=rosetta.salt)
        filt._rosetta = rosetta
        return filt

    def design_fpr(self) -> float | None:
        """Predicted worst-case range FPR at the designed max range.

        Conservative on purpose: the attack detector flags a run when the
        observed FPR exceeds a multiple of this, so the anchor is the
        largest range the filter was tuned for, not the (much lower) leaf
        point-query FPR — benign range traffic must not look like an
        attack.
        """
        if self._rosetta is None:
            return None
        core = self._rosetta
        if core.num_keys == 0:
            return None
        return min(1.0, core.predicted_range_fpr(1 << core.max_height))

    def probe_count(self) -> int:
        if self._rosetta is None:
            return 0
        return self._rosetta.stats.bloom_probes

    def reset_probe_count(self) -> None:
        if self._rosetta is not None:
            self._rosetta.stats.reset()

    def _require_populated(self) -> Rosetta:
        if self._rosetta is None:
            raise FilterBuildError("RosettaFilter not populated yet")
        return self._rosetta


register_filter_codec(RosettaFilter.name, RosettaFilter.deserialize)
