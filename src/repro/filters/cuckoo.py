"""Cuckoo filter [37] — the other hash-based point filter the paper cites.

Included for completeness of the §1 taxonomy ("hash-based filters such as
Bloom and Cuckoo filters" are key-distribution independent).  Like the plain
Bloom filter it supports point queries only; ranges pass through.

Standard partial-key cuckoo hashing: 4-slot buckets, fingerprints, and the
``alt = bucket XOR hash(fingerprint)`` kick rule from Fan et al.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.core.hashing import hash_int, mix_salt, splitmix64
from repro.errors import FilterBuildError, FilterQueryError
from repro.filters.base import KeyFilter, register_filter_codec

__all__ = ["CuckooFilter"]

_SLOTS_PER_BUCKET = 4
_MAX_KICKS = 500
_EMPTY = 0

#: Historical hash seeds; a nonzero salt re-keys both via mix_salt so a
#: rebuilt filter maps every key to fresh fingerprints and buckets.
_FINGERPRINT_SEED = 0xF1A9
_BUCKET_SEED = 0xB0C4


def _next_power_of_two(value: int) -> int:
    return 1 << (value - 1).bit_length() if value > 1 else 1


class CuckooFilter(KeyFilter):
    """4-way bucketed cuckoo filter over integer keys.

    Parameters
    ----------
    key_bits:
        Width of the key domain.
    bits_per_key:
        Memory budget per key; the fingerprint width adapts to it
        (``f ~= bits_per_key * load_factor``), clamped to [4, 16] bits.
    seed:
        Seed for the (deterministic) kick randomisation.
    salt:
        Re-keying salt mixed into both hash seeds (0 = the historical
        unsalted hashes).
    """

    name = "cuckoo"

    def __init__(
        self,
        key_bits: int = 64,
        bits_per_key: float = 10.0,
        seed: int = 7,
        salt: int = 0,
    ) -> None:
        if bits_per_key <= 0:
            raise FilterBuildError(f"bits_per_key must be > 0, got {bits_per_key}")
        self.key_bits = key_bits
        self.bits_per_key = bits_per_key
        self.seed = seed
        self.salt = salt
        self.fingerprint_bits = max(4, min(16, int(bits_per_key * 0.95)))
        self._buckets: list[list[int]] | None = None
        self._probes = 0

    # ------------------------------------------------------------------
    # Hashing helpers
    # ------------------------------------------------------------------
    def _fingerprint(self, key: int) -> int:
        seed = mix_salt(_FINGERPRINT_SEED, self.salt)
        fp = hash_int(key, seed=seed) & ((1 << self.fingerprint_bits) - 1)
        return fp or 1  # reserve 0 for "empty slot"

    def _bucket_index(self, key: int) -> int:
        seed = mix_salt(_BUCKET_SEED, self.salt)
        return hash_int(key, seed=seed) % len(self._buckets)

    def _alt_index(self, index: int, fingerprint: int) -> int:
        return (index ^ splitmix64(fingerprint)) % len(self._buckets)

    # ------------------------------------------------------------------
    # KeyFilter interface
    # ------------------------------------------------------------------
    def populate(self, keys: Sequence[int]) -> None:
        """Insert all keys via cuckoo kicking; grows on insertion failure."""
        if self._buckets is not None:
            raise FilterBuildError("CuckooFilter is already populated")
        unique = sorted(set(int(k) for k in keys))
        total_bits = max(1, int(round(self.bits_per_key * max(1, len(unique)))))
        # The xor-based alternate-bucket rule is an involution only when the
        # bucket count is a power of two (as in the original cuckoo filter).
        num_buckets = _next_power_of_two(
            max(1, total_bits // (self.fingerprint_bits * _SLOTS_PER_BUCKET))
        )
        rng = random.Random(self.seed)
        while True:
            self._buckets = [
                [_EMPTY] * _SLOTS_PER_BUCKET for _ in range(num_buckets)
            ]
            if all(self._insert(key, rng) for key in unique):
                return
            num_buckets *= 2

    def _insert(self, key: int, rng: random.Random) -> bool:
        fingerprint = self._fingerprint(key)
        index = self._bucket_index(key)
        for candidate in (index, self._alt_index(index, fingerprint)):
            bucket = self._buckets[candidate]
            for slot, value in enumerate(bucket):
                if value == _EMPTY:
                    bucket[slot] = fingerprint
                    return True
        # Kick loop.
        current = rng.choice((index, self._alt_index(index, fingerprint)))
        for _ in range(_MAX_KICKS):
            slot = rng.randrange(_SLOTS_PER_BUCKET)
            fingerprint, self._buckets[current][slot] = (
                self._buckets[current][slot],
                fingerprint,
            )
            current = self._alt_index(current, fingerprint)
            bucket = self._buckets[current]
            for slot, value in enumerate(bucket):
                if value == _EMPTY:
                    bucket[slot] = fingerprint
                    return True
        return False

    def may_contain(self, key: int) -> bool:
        """Probe the two candidate buckets for the key's fingerprint."""
        buckets = self._require_populated()
        self._probes += 1
        fingerprint = self._fingerprint(int(key))
        index = self._bucket_index(int(key))
        if fingerprint in buckets[index]:
            return True
        return fingerprint in buckets[self._alt_index(index, fingerprint)]

    def may_contain_range(self, low: int, high: int) -> bool:
        """Point-only filter: size-1 ranges probe, larger ranges pass."""
        if low > high:
            raise FilterQueryError(f"invalid range: low={low} > high={high}")
        if low == high:
            return self.may_contain(low)
        return True

    def size_in_bits(self) -> int:
        """Fingerprint storage only (table overhead excluded, as usual)."""
        buckets = self._require_populated()
        return len(buckets) * _SLOTS_PER_BUCKET * self.fingerprint_bits

    def serialize(self) -> bytes:
        """Serialize headers plus fingerprint slots (2 bytes per slot).

        A nonzero salt is appended as an 8-byte little-endian trailer; the
        slot count fully determines the unsalted payload length, so legacy
        (pre-salting) payloads — which simply end after the slots — keep
        loading as salt 0.
        """
        buckets = self._require_populated()
        parts = [
            self.key_bits.to_bytes(2, "little"),
            self.fingerprint_bits.to_bytes(1, "little"),
            len(buckets).to_bytes(8, "little"),
        ]
        for bucket in buckets:
            for value in bucket:
                parts.append(value.to_bytes(2, "little"))
        if self.salt:
            parts.append(self.salt.to_bytes(8, "little"))
        return b"".join(parts)

    @classmethod
    def deserialize(cls, payload: bytes) -> "CuckooFilter":
        """Reconstruct from :meth:`serialize` output."""
        filt = cls(key_bits=int.from_bytes(payload[:2], "little"))
        filt.fingerprint_bits = payload[2]
        num_buckets = int.from_bytes(payload[3:11], "little")
        offset = 11
        buckets = []
        for _ in range(num_buckets):
            bucket = []
            for _ in range(_SLOTS_PER_BUCKET):
                bucket.append(int.from_bytes(payload[offset : offset + 2], "little"))
                offset += 2
            buckets.append(bucket)
        if len(payload) >= offset + 8:
            filt.salt = int.from_bytes(payload[offset : offset + 8], "little")
        filt._buckets = buckets
        return filt

    def probe_count(self) -> int:
        return self._probes

    def reset_probe_count(self) -> None:
        self._probes = 0

    def _require_populated(self) -> list[list[int]]:
        if self._buckets is None:
            raise FilterBuildError("CuckooFilter not populated yet")
        return self._buckets


register_filter_codec(CuckooFilter.name, CuckooFilter.deserialize)
