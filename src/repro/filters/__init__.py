"""Filter implementations behind the master filter template (paper §4).

Rosetta (the paper's contribution) plus every baseline it is evaluated
against: SuRF [74], Prefix Bloom filters [33], plain Bloom filters [10],
fence pointers, and a Cuckoo filter [37] for the hash-based-filter taxonomy.
"""

from repro.filters.base import (
    FilterFactory,
    KeyFilter,
    deserialize_filter,
    register_filter_codec,
    serialize_envelope,
)
from repro.filters.bloom_point import BloomPointFilter
from repro.filters.combined import CombinedPointRangeFilter
from repro.filters.cuckoo import CuckooFilter
from repro.filters.fence import FencePointerFilter
from repro.filters.prefix_bloom import PrefixBloomFilter
from repro.filters.quotient import QuotientFilter
from repro.filters.rosetta_adapter import RosettaFilter
from repro.filters.surf import SuRF, SurfFilter

__all__ = [
    "BloomPointFilter",
    "CombinedPointRangeFilter",
    "CuckooFilter",
    "FencePointerFilter",
    "FilterFactory",
    "KeyFilter",
    "PrefixBloomFilter",
    "QuotientFilter",
    "RosettaFilter",
    "SuRF",
    "SurfFilter",
    "deserialize_filter",
    "register_filter_codec",
    "serialize_envelope",
]
