"""Plain full-key Bloom filter — RocksDB's default point filter.

This is the baseline the paper's Fig. 7 compares point-query FPR against
("the Bloom filters on RocksDB").  It indexes whole keys only, so it answers
point queries at the textbook FPR but can never rule out a range of more
than one key: range queries degrade to *always positive*.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.bloom import BloomFilter, optimal_num_hashes
from repro.errors import FilterBuildError, FilterQueryError
from repro.filters.base import KeyFilter, register_filter_codec

__all__ = ["BloomPointFilter"]


class BloomPointFilter(KeyFilter):
    """Full-key Bloom filter with no range support.

    Parameters
    ----------
    key_bits:
        Width of the key domain.
    bits_per_key:
        Memory budget per key.
    """

    name = "bloom"

    def __init__(
        self, key_bits: int = 64, bits_per_key: float = 10.0, salt: int = 0
    ) -> None:
        if key_bits < 1:
            raise FilterBuildError(f"key_bits must be >= 1, got {key_bits}")
        if bits_per_key < 0:
            raise FilterBuildError(
                f"bits_per_key must be >= 0, got {bits_per_key}"
            )
        self.key_bits = key_bits
        self.bits_per_key = bits_per_key
        self.salt = salt
        self._bloom: BloomFilter | None = None
        self._probes = 0

    def populate(self, keys: Sequence[int]) -> None:
        """Index all keys in a filter sized at ``bits_per_key * len(keys)``."""
        if self._bloom is not None:
            raise FilterBuildError("BloomPointFilter is already populated")
        unique = sorted(set(int(k) for k in keys))
        num_bits = int(round(self.bits_per_key * len(unique)))
        self._bloom = BloomFilter(
            num_bits, optimal_num_hashes(self.bits_per_key), salt=self.salt
        )
        for key in unique:
            self._bloom.add(key)

    def may_contain(self, key: int) -> bool:
        """Standard Bloom point probe."""
        bloom = self._require_populated()
        self._probes += 1
        return bloom.may_contain(int(key))

    def may_contain_batch(self, keys: Sequence[int]) -> list[bool]:
        """Bulk point probes: one vectorized Bloom gather for the batch."""
        bloom = self._require_populated()
        if self.key_bits > 64:
            return super().may_contain_batch(keys)
        self._probes += len(keys)
        values = np.fromiter((int(k) for k in keys), dtype=np.uint64)
        return [bool(v) for v in bloom.contains_batch(values)]

    def may_contain_range(self, low: int, high: int) -> bool:
        """Degenerate: a size-1 range is a point probe, anything else passes."""
        if low > high:
            raise FilterQueryError(f"invalid range: low={low} > high={high}")
        if low == high:
            return self.may_contain(low)
        return True

    def size_in_bits(self) -> int:
        """Bloom payload size."""
        return self._require_populated().size_in_bits()

    def serialize(self) -> bytes:
        """Serialize: key_bits header + Bloom payload."""
        return self.key_bits.to_bytes(2, "little") + self._require_populated().to_bytes()

    @classmethod
    def deserialize(cls, payload: bytes) -> "BloomPointFilter":
        """Reconstruct from :meth:`serialize` output."""
        filt = cls(key_bits=int.from_bytes(payload[:2], "little"))
        filt._bloom = BloomFilter.from_bytes(payload[2:])
        filt.salt = filt._bloom.salt
        return filt

    def design_fpr(self) -> float | None:
        """The textbook Bloom FPR at the current fill ratio."""
        if self._bloom is None:
            return None
        return self._bloom.expected_fpr()

    def probe_count(self) -> int:
        return self._probes

    def reset_probe_count(self) -> None:
        self._probes = 0

    def _require_populated(self) -> BloomFilter:
        if self._bloom is None:
            raise FilterBuildError("BloomPointFilter not populated yet")
        return self._bloom


register_filter_codec(BloomPointFilter.name, BloomPointFilter.deserialize)
