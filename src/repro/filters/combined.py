"""Two-filters-per-run baseline: a point filter plus a range filter.

The paper's §1 observes that with SuRF or Prefix Bloom, "an LSM-tree based
key-value store with such filters needs to either maintain a separate Bloom
filter per run to index full keys or suffer a high false positive rate for
point queries."  This class implements that first option — the memory of
one budget split between a full-key Bloom filter (serving point queries)
and a SuRF (serving range queries) — so benchmarks can quantify what the
two-filter workaround costs against Rosetta, which serves both query types
from one structure.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import FilterBuildError
from repro.filters.base import KeyFilter, register_filter_codec
from repro.filters.bloom_point import BloomPointFilter
from repro.filters.surf.surf import SurfFilter

__all__ = ["CombinedPointRangeFilter"]


class CombinedPointRangeFilter(KeyFilter):
    """Bloom (points) + SuRF (ranges) sharing one memory budget.

    Parameters
    ----------
    key_bits:
        Key domain width.
    bits_per_key:
        The *total* budget across both structures.
    point_fraction:
        Share of the budget handed to the point Bloom filter; the SuRF gets
        the rest (subject to its structural floor).
    """

    name = "bloom+surf"

    def __init__(
        self,
        key_bits: int = 64,
        bits_per_key: float = 22.0,
        point_fraction: float = 0.45,
    ) -> None:
        if not 0.0 < point_fraction < 1.0:
            raise FilterBuildError(
                f"point_fraction must be in (0, 1), got {point_fraction}"
            )
        self.key_bits = key_bits
        self.bits_per_key = bits_per_key
        self.point_fraction = point_fraction
        self._bloom: BloomPointFilter | None = None
        self._surf: SurfFilter | None = None

    def populate(self, keys: Sequence[int]) -> None:
        """Build both structures over the same keys."""
        if self._bloom is not None:
            raise FilterBuildError("CombinedPointRangeFilter already populated")
        point_budget = self.bits_per_key * self.point_fraction
        range_budget = self.bits_per_key - point_budget
        self._bloom = BloomPointFilter(
            key_bits=self.key_bits, bits_per_key=point_budget
        )
        self._bloom.populate(keys)
        self._surf = SurfFilter(
            key_bits=self.key_bits, variant="real", bits_per_key=range_budget
        )
        self._surf.populate(keys)

    def may_contain(self, key: int) -> bool:
        """Point queries go to the Bloom filter only."""
        return self._require()[0].may_contain(key)

    def may_contain_range(self, low: int, high: int) -> bool:
        """Range queries go to the SuRF only (points to the Bloom filter)."""
        if low == high:
            return self.may_contain(low)
        return self._require()[1].may_contain_range(low, high)

    def size_in_bits(self) -> int:
        """Sum of both structures (the cost of keeping two filters)."""
        bloom, surf = self._require()
        return bloom.size_in_bits() + surf.size_in_bits()

    def serialize(self) -> bytes:
        """Length-prefixed Bloom payload, then the SuRF payload."""
        bloom, surf = self._require()
        bloom_payload = bloom.serialize()
        return (
            len(bloom_payload).to_bytes(8, "little")
            + bloom_payload
            + surf.serialize()
        )

    @classmethod
    def deserialize(cls, payload: bytes) -> "CombinedPointRangeFilter":
        """Reconstruct from :meth:`serialize` output."""
        bloom_len = int.from_bytes(payload[:8], "little")
        bloom = BloomPointFilter.deserialize(payload[8 : 8 + bloom_len])
        surf = SurfFilter.deserialize(payload[8 + bloom_len :])
        filt = cls(key_bits=bloom.key_bits)
        filt._bloom = bloom
        filt._surf = surf
        return filt

    def probe_count(self) -> int:
        if self._bloom is None:
            return 0
        return self._bloom.probe_count() + self._surf.probe_count()

    def reset_probe_count(self) -> None:
        if self._bloom is not None:
            self._bloom.reset_probe_count()
            self._surf.reset_probe_count()

    def _require(self) -> tuple[BloomPointFilter, SurfFilter]:
        if self._bloom is None or self._surf is None:
            raise FilterBuildError("CombinedPointRangeFilter not populated yet")
        return self._bloom, self._surf


register_filter_codec(
    CombinedPointRangeFilter.name, CombinedPointRangeFilter.deserialize
)
