"""Quotient filter [9] — the third hash-based point filter of §1.

Bender et al.'s cache-friendly Bloom-filter alternative: a fingerprint is
split into a *quotient* (the canonical slot index) and a *remainder*
(stored in the slot); collisions shift remainders into subsequent slots,
with three metadata bits per slot (``is_occupied``, ``is_continuation``,
``is_shifted``) encoding run/cluster structure so lookups can recover each
remainder's canonical slot.

Because filters in this library are built once over a known key set, the
table is laid out *directly from sorted fingerprints* — runs are placed
left to right, shifting tracked as layout overflows canonical slots — so
the intricate insert-time shifting machinery is unnecessary.  Lookups use
the standard cluster-scan algorithm.  The table carries overflow slack
instead of wrapping, which keeps cluster scans linear and simple.

Like Bloom and Cuckoo filters, it serves point queries only; ranges pass.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.core.hashing import hash_int, mix_salt
from repro.errors import FilterBuildError, FilterQueryError
from repro.filters.base import KeyFilter, register_filter_codec

__all__ = ["QuotientFilter"]

#: Historical fingerprint seed; a nonzero salt re-keys it via mix_salt.
_FINGERPRINT_SEED = 0x9F0C

#: Target fraction of canonical slots in use after a build.
_TARGET_LOAD = 0.75

#: Extra non-canonical slots so clusters never need to wrap.
_OVERFLOW_SLACK = 64

_OCCUPIED = 1
_CONTINUATION = 2
_SHIFTED = 4


class QuotientFilter(KeyFilter):
    """Immutable quotient filter over integer keys.

    Parameters
    ----------
    key_bits:
        Key domain width.
    bits_per_key:
        Memory budget; the remainder width adapts as
        ``r ~= bits_per_key * load - 3`` so total slot memory
        ``2^q * (r + 3)`` tracks the budget.
    """

    name = "quotient"

    def __init__(
        self, key_bits: int = 64, bits_per_key: float = 10.0, salt: int = 0
    ) -> None:
        if bits_per_key <= 4:
            raise FilterBuildError(
                f"bits_per_key must exceed the 3 metadata bits + 1, "
                f"got {bits_per_key}"
            )
        self.key_bits = key_bits
        self.bits_per_key = bits_per_key
        self.salt = salt
        self.quotient_bits = 0
        self.remainder_bits = 0
        self._meta: list[int] | None = None  # 3 flag bits per slot
        self._remainders: list[int] = []
        self._probes = 0

    # ------------------------------------------------------------------
    # Build
    # ------------------------------------------------------------------
    def _fingerprint(self, key: int) -> tuple[int, int]:
        total_bits = self.quotient_bits + self.remainder_bits
        seed = mix_salt(_FINGERPRINT_SEED, self.salt)
        fingerprint = hash_int(int(key), seed=seed) & ((1 << total_bits) - 1)
        return fingerprint >> self.remainder_bits, fingerprint & (
            (1 << self.remainder_bits) - 1
        )

    def populate(self, keys: Sequence[int]) -> None:
        """Lay out all fingerprints from sorted order (no shifting loop)."""
        if self._meta is not None:
            raise FilterBuildError("QuotientFilter is already populated")
        unique = sorted(set(int(k) for k in keys))
        count = max(1, len(unique))
        self.quotient_bits = max(1, math.ceil(math.log2(count / _TARGET_LOAD)))
        # Memory target: 2^q * (r + 3) ~= bits_per_key * n.
        slots = 1 << self.quotient_bits
        self.remainder_bits = max(
            1, int(round(self.bits_per_key * count / slots)) - 3
        )

        # Group fingerprints by quotient.
        by_quotient: dict[int, set[int]] = {}
        for key in unique:
            quotient, remainder = self._fingerprint(key)
            by_quotient.setdefault(quotient, set()).add(remainder)

        num_slots = slots + _OVERFLOW_SLACK
        self._meta = [0] * num_slots
        self._remainders = [0] * num_slots
        next_free = 0
        for quotient in sorted(by_quotient):
            run = sorted(by_quotient[quotient])
            start = max(quotient, next_free)
            if start + len(run) > num_slots:
                raise FilterBuildError(
                    "quotient filter overflow slack exhausted; "
                    "increase bits_per_key"
                )
            self._meta[quotient] |= _OCCUPIED
            for offset, remainder in enumerate(run):
                slot = start + offset
                self._remainders[slot] = remainder
                if offset > 0:
                    self._meta[slot] |= _CONTINUATION
                if slot != quotient:
                    self._meta[slot] |= _SHIFTED
            next_free = start + len(run)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def may_contain(self, key: int) -> bool:
        """Standard quotient-filter cluster scan."""
        meta = self._require_populated()
        self._probes += 1
        quotient, remainder = self._fingerprint(int(key))
        if not meta[quotient] & _OCCUPIED:
            return False
        # Walk back to the cluster start.
        slot = quotient
        while meta[slot] & _SHIFTED:
            slot -= 1
        # Walk forward run by run until we reach fq's run.
        run_start = slot
        while slot != quotient:
            # Skip to the end of the current run.
            run_start += 1
            while meta[run_start] & _CONTINUATION:
                run_start += 1
            # Advance to the next canonical slot that has a run.
            slot += 1
            while not meta[slot] & _OCCUPIED:
                slot += 1
        # Scan fq's run for the remainder (runs are sorted).
        position = run_start
        while True:
            stored = self._remainders[position]
            if stored == remainder:
                return True
            if stored > remainder:
                return False
            position += 1
            if position >= len(meta) or not meta[position] & _CONTINUATION:
                return False

    def may_contain_range(self, low: int, high: int) -> bool:
        """Point-only filter: size-1 ranges probe, larger ranges pass."""
        if low > high:
            raise FilterQueryError(f"invalid range: low={low} > high={high}")
        if low == high:
            return self.may_contain(low)
        return True

    # ------------------------------------------------------------------
    # Accounting / serialization
    # ------------------------------------------------------------------
    def size_in_bits(self) -> int:
        """Slot memory: (r + 3) bits per slot."""
        meta = self._require_populated()
        return len(meta) * (self.remainder_bits + 3)

    def load_factor(self) -> float:
        """Fraction of slots in use."""
        meta = self._require_populated()
        used = sum(
            1
            for flags, remainder in zip(meta, self._remainders)
            if flags or remainder
        )
        return used / len(meta)

    def serialize(self) -> bytes:
        """Headers plus per-slot (flags, remainder) pairs."""
        meta = self._require_populated()
        width = (self.remainder_bits + 7) // 8
        parts = [
            self.key_bits.to_bytes(2, "little"),
            self.quotient_bits.to_bytes(1, "little"),
            self.remainder_bits.to_bytes(1, "little"),
            len(meta).to_bytes(8, "little"),
        ]
        for flags, remainder in zip(meta, self._remainders):
            parts.append(bytes([flags]))
            parts.append(remainder.to_bytes(width, "little"))
        # Nonzero salts ride as an 8-byte trailer; the slot count fully
        # determines the unsalted payload length, so legacy payloads
        # (no trailer) keep loading as salt 0.
        if self.salt:
            parts.append(self.salt.to_bytes(8, "little"))
        return b"".join(parts)

    @classmethod
    def deserialize(cls, payload: bytes) -> "QuotientFilter":
        """Reconstruct from :meth:`serialize` output."""
        filt = cls(key_bits=int.from_bytes(payload[:2], "little"))
        filt.quotient_bits = payload[2]
        filt.remainder_bits = payload[3]
        num_slots = int.from_bytes(payload[4:12], "little")
        width = (filt.remainder_bits + 7) // 8
        meta: list[int] = []
        remainders: list[int] = []
        offset = 12
        for _ in range(num_slots):
            meta.append(payload[offset])
            offset += 1
            remainders.append(
                int.from_bytes(payload[offset : offset + width], "little")
            )
            offset += width
        if len(payload) >= offset + 8:
            filt.salt = int.from_bytes(payload[offset : offset + 8], "little")
        filt._meta = meta
        filt._remainders = remainders
        return filt

    def probe_count(self) -> int:
        return self._probes

    def reset_probe_count(self) -> None:
        self._probes = 0

    def _require_populated(self) -> list[int]:
        if self._meta is None:
            raise FilterBuildError("QuotientFilter not populated yet")
        return self._meta


register_filter_codec(QuotientFilter.name, QuotientFilter.deserialize)
