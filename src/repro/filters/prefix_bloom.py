"""Prefix Bloom filter — RocksDB's built-in range-query helper [33, 36].

Hashes a *fixed-length* prefix of every key into a Bloom filter.  A range
query that is expressible as a small set of fixed-length prefixes can be
filtered by probing those covering prefixes; anything else passes through.
This is the "default RocksDB" range baseline of Fig. 5(D).

Two well-known weaknesses the paper exploits:

* Point queries: all memory sits in prefixes, so a point probe can only ask
  "does any key share my prefix?" — FPR approaches 1 on dense key sets
  (Fig. 7).
* Short ranges: a short range usually falls inside a single prefix bucket
  that *does* contain keys, so empty short ranges are rarely detected.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.bloom import BloomFilter, optimal_num_hashes
from repro.errors import FilterBuildError, FilterQueryError
from repro.filters.base import KeyFilter, register_filter_codec

__all__ = ["PrefixBloomFilter"]

#: Ranges covering more than this many prefixes are not probed (pass through),
#: mirroring RocksDB only using the prefix filter for prefix-shaped scans.
DEFAULT_MAX_COVERING_PREFIXES = 64


class PrefixBloomFilter(KeyFilter):
    """Bloom filter over fixed-length key prefixes.

    Parameters
    ----------
    key_bits:
        Width of the key domain.
    prefix_bits:
        Length of the hashed prefix (RocksDB's ``prefix_extractor`` length).
        Defaults to half the key width.
    bits_per_key:
        Memory budget per *key* (matching how the paper equalises budgets).
    max_covering_prefixes:
        Ranges spanning more than this many prefix buckets pass through
        unprobed.
    """

    name = "prefix-bloom"

    def __init__(
        self,
        key_bits: int = 64,
        prefix_bits: int | None = None,
        bits_per_key: float = 10.0,
        max_covering_prefixes: int = DEFAULT_MAX_COVERING_PREFIXES,
        salt: int = 0,
    ) -> None:
        """``prefix_bits=None`` selects a density-aware length at populate
        time: ``ceil(log2(n)) + 2`` bits, i.e. ~4x as many prefix buckets as
        keys.  A fixed-length extractor only prunes when buckets are neither
        almost-all-occupied nor uselessly fine; tying the length to the key
        count keeps the baseline in the same occupancy regime as the paper's
        50M-key setup at any benchmark scale."""
        if key_bits < 1:
            raise FilterBuildError(f"key_bits must be >= 1, got {key_bits}")
        if prefix_bits is not None and not 1 <= prefix_bits <= key_bits:
            raise FilterBuildError(
                f"prefix_bits must be in [1, {key_bits}], got {prefix_bits}"
            )
        if max_covering_prefixes < 1:
            raise FilterBuildError(
                f"max_covering_prefixes must be >= 1, got {max_covering_prefixes}"
            )
        self.key_bits = key_bits
        self.prefix_bits = prefix_bits
        self.bits_per_key = bits_per_key
        self.max_covering_prefixes = max_covering_prefixes
        self.salt = salt
        self._bloom: BloomFilter | None = None
        self._probes = 0

    @property
    def _shift(self) -> int:
        if self.prefix_bits is None:
            raise FilterBuildError("prefix length resolved only at populate()")
        return self.key_bits - self.prefix_bits

    def populate(self, keys: Sequence[int]) -> None:
        """Index the fixed-length prefix of every key."""
        if self._bloom is not None:
            raise FilterBuildError("PrefixBloomFilter is already populated")
        if self.prefix_bits is None:
            num_keys = max(1, len(set(int(k) for k in keys)))
            self.prefix_bits = min(
                self.key_bits, max(1, (num_keys - 1).bit_length() + 2)
            )
        prefixes = sorted({int(k) >> self._shift for k in keys})
        num_keys = len(set(int(k) for k in keys))
        num_bits = int(round(self.bits_per_key * num_keys))
        bits_per_item = num_bits / len(prefixes) if prefixes else 1.0
        self._bloom = BloomFilter(
            num_bits, optimal_num_hashes(bits_per_item), salt=self.salt
        )
        for prefix in prefixes:
            self._bloom.add(prefix)

    def may_contain(self, key: int) -> bool:
        """Point probe degrades to a prefix-membership probe."""
        bloom = self._require_populated()
        self._probes += 1
        return bloom.may_contain(int(key) >> self._shift)

    def may_contain_range(self, low: int, high: int) -> bool:
        """Probe every prefix bucket the range touches (if few enough)."""
        if low > high:
            raise FilterQueryError(f"invalid range: low={low} > high={high}")
        bloom = self._require_populated()
        first = low >> self._shift
        last = high >> self._shift
        if last - first + 1 > self.max_covering_prefixes:
            return True
        for prefix in range(first, last + 1):
            self._probes += 1
            if bloom.may_contain(prefix):
                return True
        return False

    def size_in_bits(self) -> int:
        """Bloom payload size."""
        return self._require_populated().size_in_bits()

    def serialize(self) -> bytes:
        """Serialize: key_bits, prefix_bits headers + Bloom payload."""
        return (
            self.key_bits.to_bytes(2, "little")
            + self.prefix_bits.to_bytes(2, "little")
            + self._require_populated().to_bytes()
        )

    @classmethod
    def deserialize(cls, payload: bytes) -> "PrefixBloomFilter":
        """Reconstruct from :meth:`serialize` output."""
        key_bits = int.from_bytes(payload[:2], "little")
        prefix_bits = int.from_bytes(payload[2:4], "little")
        filt = cls(key_bits=key_bits, prefix_bits=prefix_bits)
        filt._bloom = BloomFilter.from_bytes(payload[4:])
        filt.salt = filt._bloom.salt
        return filt

    def design_fpr(self) -> float | None:
        """Expected per-probe FPR of the prefix Bloom at its fill ratio."""
        if self._bloom is None:
            return None
        return self._bloom.expected_fpr()

    def probe_count(self) -> int:
        return self._probes

    def reset_probe_count(self) -> None:
        self._probes = 0

    def _require_populated(self) -> BloomFilter:
        if self._bloom is None:
            raise FilterBuildError("PrefixBloomFilter not populated yet")
        return self._bloom


register_filter_codec(PrefixBloomFilter.name, PrefixBloomFilter.deserialize)
