"""Exception hierarchy for the ``repro`` package.

Every error raised by this library derives from :class:`ReproError`, so callers
can catch one base class at an API boundary.  Sub-hierarchies mirror the major
subsystems: filter construction/usage, serialization, and the LSM-tree store.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class FilterError(ReproError):
    """Base class for filter-related errors (Rosetta, SuRF, Bloom, ...)."""


class FilterBuildError(FilterError):
    """A filter could not be constructed from the given keys/parameters."""


class FilterQueryError(FilterError):
    """A filter was queried with invalid arguments (bad range, bad key type)."""


class ImmutableFilterError(FilterError):
    """A mutation was attempted on a finalized (immutable) filter instance."""


class AllocationError(FilterError):
    """A memory-allocation strategy received an infeasible budget or shape."""


class SerializationError(ReproError):
    """A filter or store artifact could not be (de)serialized."""


class CorruptionError(SerializationError):
    """Stored bytes failed checksum/magic validation during deserialization."""


class StoreError(ReproError):
    """Base class for LSM-tree key-value store errors."""


class InvalidOptionsError(StoreError):
    """The store was configured with inconsistent or out-of-range options."""


class ClosedStoreError(StoreError):
    """An operation was attempted on a store that has been closed."""


class CompactionError(StoreError):
    """A background compaction failed."""


class WorkloadError(ReproError):
    """A workload generator received inconsistent parameters."""
