"""Exception hierarchy for the ``repro`` package.

Every error raised by this library derives from :class:`ReproError`, so callers
can catch one base class at an API boundary.  Sub-hierarchies mirror the major
subsystems: filter construction/usage, serialization, and the LSM-tree store.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class FilterError(ReproError):
    """Base class for filter-related errors (Rosetta, SuRF, Bloom, ...)."""


class FilterBuildError(FilterError):
    """A filter could not be constructed from the given keys/parameters."""


class FilterQueryError(FilterError):
    """A filter was queried with invalid arguments (bad range, bad key type)."""


class ImmutableFilterError(FilterError):
    """A mutation was attempted on a finalized (immutable) filter instance."""


class AllocationError(FilterError):
    """A memory-allocation strategy received an infeasible budget or shape."""


class SerializationError(ReproError):
    """A filter or store artifact could not be (de)serialized."""


class CorruptionError(SerializationError):
    """Stored bytes failed checksum/magic validation during deserialization."""


class StoreError(ReproError):
    """Base class for LSM-tree key-value store errors."""


class InvalidOptionsError(StoreError):
    """The store was configured with inconsistent or out-of-range options."""


class ClosedStoreError(StoreError):
    """An operation was attempted on a store that has been closed."""


class TransientIOError(StoreError):
    """A block read failed transiently; retrying the same read may succeed.

    Raised by fault-injecting storage environments (and reserved for real
    backends with retryable errors).  The storage layer's bounded
    retry-with-backoff policy retries exactly this class — permanent
    failures (``OSError``, :class:`CorruptionError`) are never retried.
    """


class ReadOnlyStoreError(StoreError):
    """A write was attempted while the store is in degraded read-only mode.

    A failed background flush/compaction write parks the DB here instead of
    crashing; reads keep working, and :meth:`DB.resume` re-arms writes.
    """


class WriteStallTimeoutError(StoreError):
    """A stopped writer waited longer than ``DBOptions.write_stall_timeout_s``.

    The stop trigger (L0 run count or sealed-memtable backlog at its
    ceiling) blocks writers until background maintenance drains the debt;
    if it cannot within the bound, the write fails with this error instead
    of hanging forever.  The write had no side effects and may be retried.
    """


class PowerCutError(StoreError):
    """A simulated power cut interrupted an I/O operation mid-flight.

    Only :class:`repro.lsm.faults.FaultInjectionEnv` raises this; it must
    propagate to the crash harness untouched (never swallowed into the
    background-error state machine), because everything after it models a
    machine that no longer exists.
    """


class CompactionError(StoreError):
    """A background compaction failed."""


class ServingError(StoreError):
    """Base class for serving-layer (:class:`ShardedServer`) failures.

    Every caller-visible way the front-end can fail a request is a typed
    subclass of this, so a client can write one ``except ServingError``
    handler (retry, redirect, degrade) and never see a hang or an
    anonymous ``Exception`` from the serving layer.
    """


class DeadlineExceededError(ServingError):
    """A request's deadline expired before the serving layer resolved it.

    Deadlines are enforced at dequeue: an expired request fails fast with
    this error instead of occupying a batch, and a submitter blocked on a
    full queue gives up when its deadline passes.  The request may or may
    not have reached the shard's DB; reads have no side effects and
    writes are rejected before application, so retrying is always safe.
    """


class QueueFullError(ServingError):
    """A submit was shed because the shard queue sat at ``max_queue_depth``.

    Only raised under ``ServingOptions.queue_policy = "shed"`` — the
    load-shedding alternative to blocking the submitter.  The request was
    rejected immediately and had no side effects.
    """


class ShardUnavailableError(ServingError):
    """A request was fast-failed by a shard's open circuit breaker.

    The shard either parked in degraded mode (writes fail fast while the
    supervisor retries ``DB.resume()`` with backoff) or lost its drain
    worker (reads and writes fail fast until the supervisor restarts it —
    or permanently, once the restart budget is exhausted).
    """


class WorkerCrashedError(ServingError):
    """A shard's drain worker crashed with this request queued or in flight.

    The crash handler fails every stranded request with this error and
    wakes all blocked submitters, so nothing waits on a dead worker.  The
    request's effects (if any) are unknown only for writes — and writes
    never queue, so in practice the request did not execute.
    """


class WorkloadError(ReproError):
    """A workload generator received inconsistent parameters."""
