"""Exception hierarchy for the ``repro`` package.

Every error raised by this library derives from :class:`ReproError`, so callers
can catch one base class at an API boundary.  Sub-hierarchies mirror the major
subsystems: filter construction/usage, serialization, and the LSM-tree store.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class FilterError(ReproError):
    """Base class for filter-related errors (Rosetta, SuRF, Bloom, ...)."""


class FilterBuildError(FilterError):
    """A filter could not be constructed from the given keys/parameters."""


class FilterQueryError(FilterError):
    """A filter was queried with invalid arguments (bad range, bad key type)."""


class ImmutableFilterError(FilterError):
    """A mutation was attempted on a finalized (immutable) filter instance."""


class AllocationError(FilterError):
    """A memory-allocation strategy received an infeasible budget or shape."""


class SerializationError(ReproError):
    """A filter or store artifact could not be (de)serialized."""


class CorruptionError(SerializationError):
    """Stored bytes failed checksum/magic validation during deserialization."""


class StoreError(ReproError):
    """Base class for LSM-tree key-value store errors."""


class InvalidOptionsError(StoreError):
    """The store was configured with inconsistent or out-of-range options."""


class ClosedStoreError(StoreError):
    """An operation was attempted on a store that has been closed."""


class TransientIOError(StoreError):
    """A block read failed transiently; retrying the same read may succeed.

    Raised by fault-injecting storage environments (and reserved for real
    backends with retryable errors).  The storage layer's bounded
    retry-with-backoff policy retries exactly this class — permanent
    failures (``OSError``, :class:`CorruptionError`) are never retried.
    """


class ReadOnlyStoreError(StoreError):
    """A write was attempted while the store is in degraded read-only mode.

    A failed background flush/compaction write parks the DB here instead of
    crashing; reads keep working, and :meth:`DB.resume` re-arms writes.
    """


class WriteStallTimeoutError(StoreError):
    """A stopped writer waited longer than ``DBOptions.write_stall_timeout_s``.

    The stop trigger (L0 run count or sealed-memtable backlog at its
    ceiling) blocks writers until background maintenance drains the debt;
    if it cannot within the bound, the write fails with this error instead
    of hanging forever.  The write had no side effects and may be retried.
    """


class PowerCutError(StoreError):
    """A simulated power cut interrupted an I/O operation mid-flight.

    Only :class:`repro.lsm.faults.FaultInjectionEnv` raises this; it must
    propagate to the crash harness untouched (never swallowed into the
    background-error state machine), because everything after it models a
    machine that no longer exists.
    """


class CompactionError(StoreError):
    """A background compaction failed."""


class WorkloadError(ReproError):
    """A workload generator received inconsistent parameters."""
