#!/usr/bin/env python
"""Lock-discipline lint for the LSM store's shared mutable state.

The concurrency model in ``repro.lsm.db`` assigns every piece of shared
DB / Compactor state a documented lock (see the "Concurrency model"
section of db.py's module docstring).  This lint makes the discipline
mechanical: it parses the source with ``ast`` and flags any *rebinding*
(``self._super = ...``) or *in-place mutation*
(``self._zombies.append(...)``) of a protected attribute that is not

* lexically inside a ``with self.<lock>:`` block for one of the
  attribute's documented locks, or
* in an explicitly allowlisted method (constructors, single-threaded
  recovery, teardown paths that run after workers are joined).

It is a lexical check, deliberately: "the caller holds the lock" is
exactly the convention this lint exists to make visible — helpers that
rely on it (e.g. ``_collect_zombies_locked``) carry a ``_locked`` suffix
and appear in the allowlist next to the lock they assume.

Run from the repo root (CI does)::

    python tools/lint_locks.py        # exit 1 + report on violations
"""

from __future__ import annotations

import ast
import os
import sys
from dataclasses import dataclass, field

__all__ = ["Rule", "Violation", "check_source", "check_file", "main", "RULES"]

#: Method calls on a protected attribute that mutate it in place.
_MUTATORS = frozenset(
    {
        "append", "remove", "pop", "clear", "extend", "insert", "update",
        "add", "discard",
    }
)


@dataclass(frozen=True)
class Rule:
    """Protection contract for one attribute of one class."""

    locks: frozenset[str] = frozenset()
    #: Methods allowed to touch the attribute without the lock visible:
    #: constructors and code that runs while no worker can be live.
    methods: frozenset[str] = frozenset()


def _rule(locks: tuple[str, ...] = (), methods: tuple[str, ...] = ()) -> Rule:
    return Rule(locks=frozenset(locks), methods=frozenset(methods))


#: class name -> attribute -> protection contract.  This table IS the
#: documented lock assignment; change it in the same commit as the
#: docstring in db.py when the concurrency model evolves.
RULES: dict[str, dict[str, Rule]] = {
    "DB": {
        # Superversion chain: swapped and refcounted under _sv_lock.
        "_super": _rule(("_sv_lock",), ("__init__", "_recover")),
        "_epoch": _rule(("_sv_lock",), ("__init__",)),
        "_live_svs": _rule(("_sv_lock",), ("__init__", "_recover")),
        "_zombies": _rule(
            ("_sv_lock",), ("__init__", "_collect_zombies_locked")
        ),
        # WAL rotation state: mutated under _mutex (single-threaded in
        # __init__/_recover, before any worker exists).
        "_active_wal": _rule(("_mutex",), ("__init__", "_recover")),
        "_wal_seq": _rule(("_mutex",), ("__init__", "_recover")),
        "_background_error": _rule(("_mutex",), ("__init__",)),
        # Maintenance job bookkeeping: _job_lock only.
        "_maintenance_inflight": _rule(("_job_lock",), ("__init__",)),
        "_maintenance_rearm": _rule(("_job_lock",), ("__init__",)),
        "_jobs_in_flight": _rule(("_job_lock",), ("__init__",)),
        "_flush_inflight": _rule(("_job_lock",), ("__init__",)),
        # Stall state: written only by the (single) writer holding
        # _write_lock inside _apply_backpressure, and by resume().
        "_stall_state": _rule(
            (), ("__init__", "_apply_backpressure", "resume")
        ),
        # Lifecycle flag: set once on the teardown paths.
        "_closed": _rule((), ("__init__", "close", "kill")),
    },
    "Compactor": {
        "_next_file_number": _rule(("_counter_lock",), ("__init__",)),
        "_next_group_id": _rule(("_counter_lock",), ("__init__",)),
        # Conflict table: registered/dropped under _inflight_lock only;
        # ``_conflicts_locked`` carries the caller-holds-it convention.
        # The monotonic job-id counter lives under the same lock so a
        # begin() issues the id and registers the entry atomically.
        "_inflight": _rule(("_inflight_lock",), ("__init__",)),
        "_next_job_id": _rule(("_inflight_lock",), ("__init__",)),
    },
    # Serving layer (repro.lsm.serving): per-shard request queue, the
    # closed/worker-death flags, the in-flight batch, and the injected
    # fault all live under the shard's condition variable; the circuit
    # breaker state machine (state/reason/backoff/probe instant), the
    # worker restart budget, and the worker thread handle live under
    # _breaker_lock.  The two locks are never held together.  The
    # server's own closed flag is single-writer on the teardown path.
    "_Shard": {
        "_queue": _rule(("_cond",), ("__init__",)),
        "_queue_earliest": _rule(("_cond",), ("__init__",)),
        "_closed": _rule(("_cond",), ("__init__",)),
        "_worker_dead": _rule(("_cond",), ("__init__",)),
        "_inflight": _rule(("_cond",), ("__init__",)),
        "_fault_to_inject": _rule(("_cond",), ("__init__",)),
        "_breaker_state": _rule(("_breaker_lock",), ("__init__",)),
        "_breaker_reason": _rule(("_breaker_lock",), ("__init__",)),
        "_backoff_s": _rule(("_breaker_lock",), ("__init__",)),
        "_next_probe_at": _rule(("_breaker_lock",), ("__init__",)),
        "_worker_restarts": _rule(("_breaker_lock",), ("__init__",)),
        "_thread": _rule(("_breaker_lock",), ("__init__",)),
    },
    "_ScatterSink": {
        "_remaining": _rule(("_lock",), ("__init__",)),
        "_parts": _rule(("_lock",), ("__init__",)),
    },
    "ShardedServer": {
        "_closed": _rule((), ("__init__", "close")),
        "_shards": _rule((), ("__init__",)),
        "_supervisor": _rule((), ("__init__",)),
        "_leaked_workers": _rule((), ("__init__", "close")),
    },
    # Filter dictionary (repro.lsm.filter_integration): the memoization
    # map, the degraded set, and the attack detector's flag set + counters
    # are shared between foreground queries and background compaction;
    # all of them live under the dictionary's own _lock.
    "FilterDictionary": {
        "_filters": _rule(("_lock",), ("__init__",)),
        "degraded": _rule(("_lock",), ("__init__",)),
        "under_attack": _rule(("_lock",), ("__init__",)),
        "_outcomes": _rule(("_lock",), ("__init__",)),
        "_design_fpr": _rule(("_lock",), ("__init__",)),
    },
}


@dataclass
class Violation:
    path: str
    line: int
    cls: str
    method: str
    attr: str
    kind: str  # "assign" or "mutate"
    rule: Rule

    def __str__(self) -> str:
        wants = " or ".join(
            f"`with self.{lock}:`" for lock in sorted(self.rule.locks)
        )
        hint = (
            f"hold {wants}" if wants
            else f"only {sorted(self.rule.methods)} may touch it"
        )
        return (
            f"{self.path}:{self.line}: {self.cls}.{self.method} "
            f"{'rebinds' if self.kind == 'assign' else 'mutates'} "
            f"self.{self.attr} outside its documented lock context ({hint})"
        )


def _self_attr(node: ast.expr) -> str | None:
    """``self.<name>`` -> name, else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


class _LockVisitor(ast.NodeVisitor):
    def __init__(self, path: str, rules: dict[str, dict[str, Rule]]) -> None:
        self.path = path
        self.rules = rules
        self.violations: list[Violation] = []
        self._cls: str | None = None
        self._method: str | None = None
        self._held: list[str] = []  # lexical stack of held self.* locks

    # -- structure ------------------------------------------------------
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        outer = self._cls
        self._cls = node.name
        self.generic_visit(node)
        self._cls = outer

    def _visit_func(self, node) -> None:
        outer, held = self._method, self._held
        # Only the outermost method name matters for the allowlist;
        # nested closures inherit it (a closure defined inside
        # _apply_backpressure still runs "in" _apply_backpressure).
        if self._method is None:
            self._method = node.name
        self._held = list(held)
        self.generic_visit(node)
        self._method, self._held = outer, held

    visit_FunctionDef = _visit_func
    visit_AsyncFunctionDef = _visit_func

    def visit_With(self, node: ast.With) -> None:
        added = [
            attr
            for item in node.items
            if (attr := _self_attr(item.context_expr)) is not None
        ]
        self._held.extend(added)
        self.generic_visit(node)
        if added:
            del self._held[-len(added):]

    # -- checks ---------------------------------------------------------
    def _check(self, attr: str, line: int, kind: str) -> None:
        if self._cls is None or self._method is None:
            return
        rule = self.rules.get(self._cls, {}).get(attr)
        if rule is None:
            return
        if self._method in rule.methods:
            return
        if any(lock in rule.locks for lock in self._held):
            return
        self.violations.append(
            Violation(
                path=self.path,
                line=line,
                cls=self._cls,
                method=self._method,
                attr=attr,
                kind=kind,
                rule=rule,
            )
        )

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            attr = _self_attr(target)
            if attr is not None:
                self._check(attr, node.lineno, "assign")
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        attr = _self_attr(node.target)
        if attr is not None:
            self._check(attr, node.lineno, "assign")
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        # self.<attr>.append(...) and friends: in-place mutation.
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in _MUTATORS:
            attr = _self_attr(func.value)
            if attr is not None:
                self._check(attr, node.lineno, "mutate")
        self.generic_visit(node)


def check_source(
    source: str,
    path: str = "<string>",
    rules: dict[str, dict[str, Rule]] | None = None,
) -> list[Violation]:
    """Lint one module's source; returns violations (empty = clean)."""
    visitor = _LockVisitor(path, rules if rules is not None else RULES)
    visitor.visit(ast.parse(source, filename=path))
    return visitor.violations


def check_file(
    path: str, rules: dict[str, dict[str, Rule]] | None = None
) -> list[Violation]:
    with open(path, encoding="utf-8") as handle:
        return check_source(handle.read(), path, rules)


#: The modules whose classes carry RULES entries.
_TARGETS = (
    os.path.join("src", "repro", "lsm", "db.py"),
    os.path.join("src", "repro", "lsm", "compaction.py"),
    os.path.join("src", "repro", "lsm", "serving.py"),
    os.path.join("src", "repro", "lsm", "filter_integration.py"),
)


def main(argv: list[str] | None = None) -> int:
    paths = (argv if argv else None) or list(_TARGETS)
    violations: list[Violation] = []
    for path in paths:
        if not os.path.exists(path):
            print(f"lint_locks: no such file: {path}", file=sys.stderr)
            return 2
        violations.extend(check_file(path))
    for violation in violations:
        print(violation)
    if violations:
        print(f"lint_locks: {len(violations)} violation(s)", file=sys.stderr)
        return 1
    print(f"lint_locks: OK ({len(paths)} file(s) clean)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
