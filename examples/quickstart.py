#!/usr/bin/env python3
"""Quickstart: build a Rosetta filter and use it to skip empty range reads.

Demonstrates the core API surface in under a minute:

1. Build a :class:`repro.Rosetta` over a key set with a memory budget.
2. Answer point and range-emptiness queries.
3. Use §2.2.1 range *tightening* to narrow the I/O window.
4. Compare measured FPR against a same-memory SuRF.

Run:  python examples/quickstart.py
"""

import os
import random

from repro import Rosetta, SurfFilter

KEY_BITS = 32
NUM_KEYS = int(os.environ.get("REPRO_EXAMPLE_KEYS", "50000"))
BITS_PER_KEY = 18
MAX_RANGE = 64


def main() -> None:
    rng = random.Random(7)
    keys = rng.sample(range(1 << KEY_BITS), NUM_KEYS)
    key_set = set(keys)

    print(f"Building Rosetta over {NUM_KEYS:,} keys "
          f"at {BITS_PER_KEY} bits/key ...")
    filt = Rosetta.build(
        keys,
        key_bits=KEY_BITS,
        bits_per_key=BITS_PER_KEY,
        max_range=MAX_RANGE,
        strategy="hybrid",
        range_size_histogram={16: 1},  # expected workload: short ranges
    )
    print(f"  -> {filt}")
    print(f"  -> per-level bits (leaf first): {filt.memory_breakdown()}")

    # --- Point queries -------------------------------------------------
    present = keys[0]
    print(f"\nPoint query on a stored key {present}: "
          f"{filt.may_contain(present)}")

    # --- Range queries ---------------------------------------------------
    # Find a genuinely empty range and show the filter rejecting it.
    while True:
        low = rng.randrange((1 << KEY_BITS) - 64)
        if not any(k in key_set for k in range(low, low + 16)):
            break
    print(f"Empty range [{low}, {low + 15}]: "
          f"{filt.may_contain_range(low, low + 15)} (False = pruned, no I/O)")

    occupied = sorted(key_set)[NUM_KEYS // 2]
    print(f"Occupied range [{occupied - 2}, {occupied + 2}]: "
          f"{filt.may_contain_range(occupied - 2, occupied + 2)}")

    # --- Tightening ------------------------------------------------------
    tightened = filt.tightened_range(occupied - 30, occupied + 30)
    print(f"Tightened [{occupied - 30}, {occupied + 30}] -> {tightened} "
          "(storage only needs the narrow window)")

    # --- FPR vs SuRF at the same memory ---------------------------------
    trials, fp_rosetta = 2000, 0
    surf = SurfFilter(key_bits=KEY_BITS, variant="real",
                      bits_per_key=BITS_PER_KEY)
    surf.populate(keys)
    fp_surf = 0
    done = 0
    while done < trials:
        low = rng.randrange((1 << KEY_BITS) - 16)
        if any(k in key_set for k in range(low, low + 16)):
            continue
        done += 1
        fp_rosetta += filt.may_contain_range(low, low + 15)
        fp_surf += surf.may_contain_range(low, low + 15)
    print(f"\nEmpty-range FPR over {trials} size-16 queries at "
          f"{BITS_PER_KEY} bits/key:")
    print(f"  Rosetta: {fp_rosetta / trials:.5f}")
    print(f"  SuRF:    {fp_surf / trials:.5f} "
          f"(actual memory {surf.size_in_bits() / NUM_KEYS:.1f} bits/key)")
    print(f"\nRosetta probe stats: {filt.stats}")


if __name__ == "__main__":
    main()
