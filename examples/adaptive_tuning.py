#!/usr/bin/env python3
"""Workload-adaptive tuning (§2.4): the store re-tunes Rosetta per run.

Rosetta monitors workload patterns (range-size histograms, filter hit
rates) through the store's native statistics and, at compaction time,
rebuilds filters with a workload-optimal configuration:

* short-range-dominated workloads -> single-level filter (all memory in
  the full-key Bloom filter; best FPR, probe cost linear in range size);
* longer ranges -> variable-level allocation (bits pushed toward deeper
  levels by cumulative probe-frequency weights).

This demo runs a short-range workload, lets the auto-tuner retune, forces
a compaction so new filters adopt the tuning, and shows the FPR drop.

Run:  python examples/adaptive_tuning.py
"""

import os
import shutil
import tempfile

from repro.bench import make_factory, run_workload
from repro.bench.endtoend import load_database
from repro.lsm import DBOptions
from repro.workloads import WorkloadBuilder, generate_dataset

KEY_BITS = 64
NUM_KEYS = int(os.environ.get("REPRO_EXAMPLE_KEYS", "15000"))
BITS_PER_KEY = 18


def main() -> None:
    dataset = generate_dataset(NUM_KEYS, KEY_BITS, seed=11)
    keys = [int(k) for k in dataset.keys]
    builder = WorkloadBuilder(keys, KEY_BITS, seed=12)
    workload = builder.empty_range_queries(400, 8)  # short ranges dominate

    path = tempfile.mkdtemp(prefix="repro-tuning-")
    try:
        # Start with a deliberately generic configuration: the "optimized"
        # allocation assuming worst-case ranges of 1024.
        generic = make_factory(
            "rosetta-optimized", KEY_BITS, BITS_PER_KEY, max_range=1024
        )
        options = DBOptions(
            key_bits=KEY_BITS,
            memtable_size_bytes=64 << 10,
            sst_size_bytes=256 << 10,
            max_bytes_for_level_base=1 << 20,
            device="ssd-scaled",
        )
        db = load_database(path, dataset, generic, options)

        before = run_workload(db, workload)
        print("Phase 1 - generic configuration (optimized, R_max=1024):")
        print(f"  FPR = {before.fpr:.5f}, "
              f"end-to-end = {before.end_to_end_seconds * 1e3:.1f} ms")

        # The tracker has now seen 400 size-8 range queries.
        decision = db.retune_filters()
        print(f"\nAuto-tuner decision: strategy={decision.strategy!r}, "
              f"max_range={decision.max_range} "
              f"(observed histogram: {decision.range_size_histogram})")

        # A full compaction rewrites every SST, so every filter instance is
        # rebuilt with the tuned recipe ("at compaction time, we reconcile
        # these statistics", §2.4).
        db.force_full_compaction()

        after = run_workload(db, workload)
        print("\nPhase 2 - after retuning + compaction:")
        print(f"  FPR = {after.fpr:.5f}, "
              f"end-to-end = {after.end_to_end_seconds * 1e3:.1f} ms")
        if after.fpr < before.fpr:
            print("\nThe tuned single-level filter cut the false positive "
                  "rate, exactly as §2.4 predicts for short-range workloads.")
        db.close()
    finally:
        shutil.rmtree(path, ignore_errors=True)


if __name__ == "__main__":
    main()
