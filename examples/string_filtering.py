#!/usr/bin/env python3
"""Range filtering over string keys (the Fig. 10 scenario).

Generates a synthetic Wikipedia-title corpus (the offline stand-in for the
paper's WEX dataset), packs titles order-preservingly into a 96-bit integer
domain, and compares Rosetta against SuRF across memory budgets — showing
the paper's headline for strings: SuRF needs ~20 bits/key just for its trie
structure, while Rosetta keeps working below that and converts extra memory
into lower FPR.

Run:  python examples/string_filtering.py
"""

import os

from repro.bench.experiments import Scale, fig10_strings
from repro.bench.report import format_table
from repro.filters.surf import SuRF
from repro.workloads import generate_wex_titles


def main() -> None:
    num_titles = int(os.environ.get("REPRO_EXAMPLE_KEYS", "2000"))
    titles = generate_wex_titles(num_titles, seed=5)
    print("Sample synthetic titles:")
    for title in titles[:6]:
        print("   ", title.decode())

    # Native byte-string SuRF (no integer codec): point + range queries.
    surf = SuRF.build(titles, variant="real", suffix_bits=8)
    print(f"\nNative SuRF over {len(titles):,} titles: "
          f"{surf.size_in_bits() / len(titles):.1f} bits/key")
    probe = titles[42]
    print(f"  lookup({probe.decode()!r}) = {surf.may_contain(probe)}")
    absent = b"Zzzz_Nonexistent_Title"
    print(f"  lookup({absent.decode()!r}) = {surf.may_contain(absent)}")
    print(f"  range [{titles[10].decode()!r} .. {titles[12].decode()!r}] "
          f"= {surf.may_contain_range(titles[10], titles[12])}")

    print("\nFig. 10 sweep (scaled down; REPRO_SCALE env var scales up):")
    headers, rows = fig10_strings(
        Scale(num_keys=num_titles, num_queries=max(30, num_titles // 13)),
        bits_per_key_sweep=(6, 10, 14, 18, 22, 26, 30),
    )
    print(format_table(headers, rows))
    print("\nNote the SuRF column: its memory cannot drop below the trie's "
          "structural cost, while Rosetta accepts any budget.")


if __name__ == "__main__":
    main()
