#!/usr/bin/env python3
"""Full-system demo: Rosetta inside the LSM-tree key-value store.

Mirrors the paper's §4 integration: a RocksDB-like store where every SST
file carries its own Rosetta instance, rebuilt at flush/compaction time.
The demo loads a dataset, runs an empty-range workload (the worst case
filters exist for), and prints the paper's cost taxonomy — then repeats
the workload with no filter to show the saved I/O.

Run:  python examples/lsm_store.py
"""

import os

from repro.bench import make_factory, run_workload, scratch_db
from repro.bench.report import format_table
from repro.lsm import DBOptions
from repro.workloads import WorkloadBuilder, generate_dataset

KEY_BITS = 64
NUM_KEYS = int(os.environ.get("REPRO_EXAMPLE_KEYS", "20000"))
NUM_QUERIES = int(os.environ.get("REPRO_EXAMPLE_QUERIES", "300"))
RANGE_SIZE = 16
BITS_PER_KEY = 22


def options() -> DBOptions:
    return DBOptions(
        key_bits=KEY_BITS,
        memtable_size_bytes=64 << 10,
        sst_size_bytes=256 << 10,
        max_bytes_for_level_base=1 << 20,
        device="ssd-scaled",  # latency scaled to Python CPU (see repro.lsm.env)
    )


def main() -> None:
    dataset = generate_dataset(NUM_KEYS, KEY_BITS, seed=1)
    keys = [int(k) for k in dataset.keys]
    builder = WorkloadBuilder(keys, KEY_BITS, seed=2)
    workload = builder.empty_range_queries(NUM_QUERIES, RANGE_SIZE)

    rows = []
    for name in ("rosetta", "surf", "prefix-bloom", "fence"):
        factory = (
            None if name == "fence"
            else make_factory(
                name, KEY_BITS, BITS_PER_KEY,
                max_range=64, range_size_histogram={RANGE_SIZE: 1},
            )
        )
        with scratch_db(dataset, factory, options()) as db:
            print(f"--- {name}: tree shape after load ---")
            print(db.describe(), "\n")
            result = run_workload(db, workload)
        rows.append(
            (
                name,
                f"{result.end_to_end_seconds * 1e3:.1f}",
                f"{result.io_seconds * 1e3:.2f}",
                f"{result.cpu_seconds * 1e3:.1f}",
                f"{result.fpr:.4f}",
                result.block_reads,
            )
        )

    print(format_table(
        ("filter", "end_to_end_ms", "io_ms", "cpu_ms", "fpr", "block_reads"),
        rows,
        title=f"{NUM_QUERIES} empty range queries of size {RANGE_SIZE} "
              f"over {NUM_KEYS:,} keys",
    ))
    print("\nLower FPR -> fewer wasted block reads -> lower end-to-end time.")


if __name__ == "__main__":
    main()
