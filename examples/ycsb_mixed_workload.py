#!/usr/bin/env python3
"""Mixed YCSB-E workload + extensions: Monkey budgets, tiered compaction.

This example drives the store the way the paper's motivating applications
do — a scan-majority YCSB-E mix with interleaved point reads — and then
demonstrates two extensions built on the paper's citations:

* **Monkey-style budgets** (Dayan et al. [24], cited in §1): with runs of
  very different sizes, a global filter-memory pool is better spent giving
  small runs more bits per key.
* **Tiered compaction**: more runs per level means more filter instances
  on every read path — exactly the regime where cheap, low-FPR filters
  matter most.

Run:  python examples/ycsb_mixed_workload.py
"""

import os
import shutil
import tempfile

from repro.bench import make_factory, run_workload
from repro.bench.endtoend import load_database
from repro.bench.report import format_table
from repro.core.monkey import MonkeyBudgetPolicy
from repro.lsm import DBOptions
from repro.workloads import WorkloadBuilder, generate_dataset

KEY_BITS = 64
NUM_KEYS = int(os.environ.get("REPRO_EXAMPLE_KEYS", "15000"))


def run_mix(compaction_style: str) -> tuple:
    dataset = generate_dataset(NUM_KEYS, KEY_BITS, seed=31, value_size=64)
    keys = [int(k) for k in dataset.keys]
    workload = WorkloadBuilder(keys, KEY_BITS, seed=32).workload_e(
        300, max_range_size=32, scan_fraction=0.95
    )
    options = DBOptions(
        key_bits=KEY_BITS,
        memtable_size_bytes=32 << 10,
        sst_size_bytes=128 << 10,
        max_bytes_for_level_base=512 << 10,
        level_size_ratio=4,
        compaction_style=compaction_style,
        device="ssd-scaled",
    )
    factory = make_factory("rosetta", KEY_BITS, 22, max_range=64,
                           range_size_histogram={16: 1})
    path = tempfile.mkdtemp(prefix=f"repro-ycsb-{compaction_style}-")
    try:
        db = load_database(path, dataset, factory, options,
                           write_path_fraction=0.3)
        runs = len(db.version.all_runs_newest_first())
        result = run_workload(db, workload)
        db.close()
        return (
            compaction_style,
            runs,
            f"{result.end_to_end_seconds * 1e3:.1f}",
            f"{result.fpr:.4f}",
            result.block_reads,
        )
    finally:
        shutil.rmtree(path, ignore_errors=True)


def main() -> None:
    print("YCSB-E mix (95% scans of 1-32 keys, 5% point reads), all empty")
    print("queries — the filters stand between every operation and the disk.\n")

    rows = [run_mix("leveled"), run_mix("tiered")]
    print(format_table(
        ("compaction", "runs", "end_to_end_ms", "fpr", "block_reads"), rows,
        title="Rosetta under leveled vs tiered compaction",
    ))
    print("\nTiered compaction keeps more runs alive; every run carries its")
    print("own filter, so low FPR matters even more there.\n")

    # Monkey: how should a global filter budget split across those runs?
    policy = MonkeyBudgetPolicy(total_bits_per_key=10)
    layout = [500, 5_000, 50_000]  # a typical leveled run-size layout
    per_run = policy.budgets_for_layout(layout)
    print(format_table(
        ("run_size", "bits_per_key"),
        [(size, f"{bpk:.1f}") for size, bpk in zip(layout, per_run)],
        title="Monkey-style filter budgets (10 bits/key global pool)",
    ))
    gain = policy.improvement_over_uniform(layout)
    print(f"\nExpected false-positive I/Os per point lookup improve "
          f"{gain:.2f}x over a uniform split.")


if __name__ == "__main__":
    main()
